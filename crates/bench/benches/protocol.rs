//! Criterion benchmarks of the gossip protocol machinery: engine ticks,
//! message handling, directory digests, and the simulator's event rate
//! — the per-operation costs behind the Fig 2-5 scalability results.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use planetp_gossip::{
    DirEntry, Directory, GossipConfig, GossipEngine, PeerStatus, SizedPayload, SpeedClass,
};
use planetp_simnet::{LinkClass, SimConfig, Simulator};
use std::hint::black_box;

fn directory_of(n: u32) -> Directory<SizedPayload> {
    let mut d = Directory::new();
    for id in 0..n {
        d.insert(
            id,
            DirEntry {
                status_version: 1,
                bloom_version: 1,
                payload: Some(SizedPayload { bytes: 16_000 }),
                status: PeerStatus::Online,
                speed: SpeedClass::Fast,
            },
        );
    }
    d
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("gossip_engine");
    for n in [100u32, 1000, 5000] {
        let dir = directory_of(n);
        g.bench_with_input(BenchmarkId::new("tick", n), &dir, |b, dir| {
            let mut engine = GossipEngine::with_directory(
                0,
                SpeedClass::Fast,
                GossipConfig::default(),
                42,
                dir.clone(),
            );
            engine.local_update(SizedPayload { bytes: 3000 });
            let mut now = 0u64;
            b.iter(|| {
                now += 30_000;
                black_box(engine.tick(now))
            });
        });
        g.bench_with_input(BenchmarkId::new("digest", n), &dir, |b, dir| {
            // Clone defeats the digest cache so the full fold is timed.
            b.iter(|| black_box(dir.clone().digest()));
        });
    }
    g.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    g.bench_function("propagation_200_lan", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(SimConfig::default());
            sim.add_stable_community(&[LinkClass::Lan45M; 200], 16_000);
            let rumor = sim.local_update(0, 3000);
            sim.track(rumor);
            sim.run_until(600_000);
            black_box(sim.metrics.total_messages)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_engine, bench_simulator);
criterion_main!(benches);
