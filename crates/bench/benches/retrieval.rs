//! Criterion benchmarks of the retrieval path: IPF computation over
//! many Bloom filters (the paper quotes "50 ms to search for a query
//! with five terms across 1000 Bloom filters"), peer ranking, and full
//! distributed queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use planetp_bench::retrieval::build_setup;
use planetp_bloom::{BloomFilter, BloomParams};
use planetp_corpus::{ap89_like_scaled, Collection, Partition};
use planetp_search::{rank_peers, DistributedSearch, IpfTable, SelectionConfig};
use std::hint::black_box;

fn filters(n: usize) -> Vec<BloomFilter> {
    (0..n)
        .map(|p| {
            let mut f = BloomFilter::with_paper_defaults();
            for i in 0..1000 {
                f.insert(&format!("peer{p}-term{i}"));
            }
            for i in 0..200 {
                f.insert(&format!("shared-term{i}"));
            }
            f
        })
        .collect()
}

fn bench_ipf_and_ranking(c: &mut Criterion) {
    let mut g = c.benchmark_group("ranking");
    g.sample_size(20);
    let query: Vec<String> = (0..5).map(|i| format!("shared-term{i}")).collect();
    for n in [100usize, 1000] {
        let fs = filters(n);
        // The paper's micro-benchmark: query of five terms against
        // n Bloom filters.
        g.bench_with_input(BenchmarkId::new("ipf_5_terms", n), &fs, |b, fs| {
            b.iter(|| black_box(IpfTable::compute(&query, fs)));
        });
        let ipf = IpfTable::compute(&query, &fs);
        g.bench_with_input(BenchmarkId::new("rank_peers", n), &fs, |b, fs| {
            b.iter(|| black_box(rank_peers(&query, fs, &ipf)).len());
        });
    }
    g.finish();
}

fn bench_distributed_query(c: &mut Criterion) {
    let mut g = c.benchmark_group("distributed_query");
    g.sample_size(10);
    let collection = Collection::generate(ap89_like_scaled(40));
    let setup = build_setup(collection, 200, Partition::paper(), BloomParams::paper(), 7);
    let search = DistributedSearch::new(&setup.peers);
    let queries: Vec<&Vec<String>> = setup
        .collection
        .queries
        .iter()
        .take(10)
        .map(|q| &q.terms)
        .collect();
    g.bench_function("tfxipf_adaptive_k20", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for q in &queries {
                total += search.search(q, SelectionConfig::paper(20)).results.len();
            }
            black_box(total)
        });
    });
    g.bench_function("tfidf_oracle_k20", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for q in &queries {
                total += setup.central.top_k(q, 20).len();
            }
            black_box(total)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_ipf_and_ranking, bench_distributed_query);
criterion_main!(benches);
