//! Shared plumbing for the figure/table harness binaries.
//!
//! Every binary prints a human-readable table to stdout and, when
//! `PLANETP_JSON_DIR` is set, writes the same series as JSON for
//! plotting. `--quick` runs a scaled-down sweep (the integration tests
//! and smoke runs use it); `--full` runs at the paper's scale.

use serde::Serialize;
use std::path::PathBuf;

/// Sweep scale selected on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minutes-scale sweep with smaller communities.
    Quick,
    /// The paper's experiment sizes.
    Full,
    /// The default: paper-faithful shapes at tractable sizes.
    Default,
}

/// Parse `--quick` / `--full` from the process arguments.
pub fn scale_from_args() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--quick") {
        Scale::Quick
    } else if args.iter().any(|a| a == "--full") {
        Scale::Full
    } else {
        Scale::Default
    }
}

/// Write a named JSON artifact if `PLANETP_JSON_DIR` is set.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let Ok(dir) = std::env::var("PLANETP_JSON_DIR") else {
        return;
    };
    let mut path = PathBuf::from(dir);
    if std::fs::create_dir_all(&path).is_err() {
        return;
    }
    path.push(format!("{name}.json"));
    if let Ok(s) = serde_json::to_string_pretty(value) {
        let _ = std::fs::write(&path, s);
        eprintln!("wrote {}", path.display());
    }
}

/// Render a simple aligned table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<width$}  ", c, width = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Summarize a latency sample as the quantiles the paper's CDF figures
/// are read at.
pub fn cdf_row(label: &str, samples: &[f64], unconverged: usize) -> Vec<String> {
    let mut s = samples.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let q = |p: f64| -> String {
        if s.is_empty() {
            return "-".into();
        }
        let idx = ((p * s.len() as f64).ceil() as usize).clamp(1, s.len()) - 1;
        format!("{:.0}", s[idx])
    };
    vec![
        label.to_string(),
        s.len().to_string(),
        q(0.10),
        q(0.50),
        q(0.90),
        q(0.99),
        q(1.0),
        unconverged.to_string(),
    ]
}

/// Headers matching [`cdf_row`].
pub fn cdf_headers() -> Vec<&'static str> {
    vec![
        "series",
        "events",
        "p10(s)",
        "p50(s)",
        "p90(s)",
        "p99(s)",
        "max(s)",
        "unconverged",
    ]
}

pub mod retrieval;
