//! Table 3: characteristics of the collections used to evaluate
//! PlanetP's search and retrieval. Our collections are synthetic
//! equivalents matched on query and document counts (see DESIGN.md for
//! the substitution argument); this binary generates them and reports
//! their actual statistics next to the paper's numbers.

use planetp_bench::{print_table, scale_from_args, write_json, Scale};
use planetp_corpus::{ap89_like_scaled, table3_specs, Collection};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    trace: String,
    queries: usize,
    documents: usize,
    vocabulary: usize,
    size_mb: f64,
}

fn main() {
    let scale = scale_from_args();
    let paper = [
        ("CACM", 52, 3204, 75_493, 2.1),
        ("MED", 30, 1033, 83_451, 1.0),
        ("CRAN", 152, 1400, 117_718, 1.6),
        ("CISI", 76, 1460, 84_957, 2.4),
        ("AP89", 97, 84_678, 129_603, 266.0),
    ];
    let mut specs = table3_specs();
    if scale != Scale::Full {
        // Full AP89 takes a while to generate; scale it down by default.
        let last = specs.len() - 1;
        specs[last] = ap89_like_scaled(8);
    }

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (spec, p) in specs.into_iter().zip(paper) {
        eprintln!("generating {} ({} docs)...", spec.name, spec.num_docs);
        let c = Collection::generate(spec);
        let r = Row {
            trace: c.spec.name.clone(),
            queries: c.queries.len(),
            documents: c.docs.len(),
            vocabulary: c.vocabulary_size(),
            size_mb: c.size_mb(),
        };
        rows.push(vec![
            r.trace.clone(),
            format!("{} (paper {})", r.queries, p.1),
            format!("{} (paper {})", r.documents, p.2),
            format!("{} (paper {})", r.vocabulary, p.3),
            format!("{:.1} (paper {:.1})", r.size_mb, p.4),
        ]);
        json.push(r);
    }
    println!("Table 3: characteristics of the synthetic evaluation collections");
    print_table(
        &[
            "Trace",
            "Queries",
            "Documents",
            "Number of words",
            "Size (MB)",
        ],
        &rows,
    );
    write_json("table3_collections", &json);
}
