//! Table 2: the constants used by the gossiping simulator, printed from
//! the code that actually parameterizes it, plus the measured
//! compressed-filter sizes from the real Bloom implementation for
//! comparison.

use planetp_bench::print_table;
use planetp_bloom::{BloomFilter, CompressedBloom};
use planetp_simnet::Table2;

fn measured_bf(keys: usize) -> usize {
    let mut f = BloomFilter::with_paper_defaults();
    for i in 0..keys {
        f.insert(&format!("term-{i}"));
    }
    CompressedBloom::compress(&f).wire_bytes()
}

fn main() {
    let t = Table2::paper();
    println!("Table 2: constants used in the simulation of PlanetP's gossiping algorithm");
    print_table(
        &["Parameter", "Value"],
        &[
            vec![
                "CPU gossiping time".into(),
                format!("{} ms", t.cpu_gossip_ms),
            ],
            vec![
                "Base gossiping interval".into(),
                format!("{} s", t.base_gossip_interval_ms / 1000),
            ],
            vec![
                "Max gossiping interval".into(),
                format!("{} s", t.max_gossip_interval_ms / 1000),
            ],
            vec!["Network BW".into(), "56 Kb/s to 45 Mb/s".into()],
            vec![
                "Message header size".into(),
                format!("{} bytes", t.message_header_bytes),
            ],
            vec![
                "1000 keys BF".into(),
                format!(
                    "{} bytes (measured: {})",
                    t.bf_1000_keys_bytes,
                    measured_bf(1000)
                ),
            ],
            vec![
                "20000 keys BF".into(),
                format!(
                    "{} bytes (measured: {})",
                    t.bf_20000_keys_bytes,
                    measured_bf(20_000)
                ),
            ],
            vec!["BF summary".into(), format!("{} bytes", t.bf_summary_bytes)],
            vec![
                "Peer summary".into(),
                format!("{} bytes", t.peer_summary_bytes),
            ],
        ],
    );
}
