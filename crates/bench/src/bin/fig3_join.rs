//! Figure 3: time for `x - n` peers to simultaneously join a stable
//! community of `n` online peers, each joiner sharing a 20,000-key
//! Bloom filter; LAN, DSL, and MIX connectivity.

use planetp_bench::{print_table, scale_from_args, write_json, Scale};
use planetp_gossip::Algorithm;
use planetp_simnet::experiments::{join_storm, JoinResult, Scenario};
use planetp_simnet::LinkScenario;

fn main() {
    let scale = scale_from_args();
    let (n_stable, joiner_counts): (usize, Vec<usize>) = match scale {
        Scale::Quick => (100, vec![10, 25]),
        Scale::Default => (500, vec![25, 50, 75, 100, 125]),
        Scale::Full => (1000, vec![50, 100, 150, 200, 250]),
    };
    let scenarios = [
        Scenario {
            name: "LAN",
            links: LinkScenario::LAN,
            interval_ms: 30_000,
            algorithm: Algorithm::PlanetP,
            bandwidth_aware: false,
        },
        Scenario {
            name: "DSL",
            links: LinkScenario::DSL,
            interval_ms: 30_000,
            algorithm: Algorithm::PlanetP,
            bandwidth_aware: false,
        },
        Scenario {
            name: "MIX",
            links: LinkScenario::Mix,
            interval_ms: 30_000,
            algorithm: Algorithm::PlanetP,
            bandwidth_aware: true,
        },
    ];
    let mut results: Vec<JoinResult> = Vec::new();
    for scenario in scenarios {
        for &m in &joiner_counts {
            let deadline_s = 6 * 3600;
            let r = join_storm(scenario, n_stable, m, 0x00F3, deadline_s);
            eprintln!(
                "{:4} m={:4} time={:>9} volume={:.1}MB",
                r.scenario,
                r.m_joiners,
                r.time_s.map_or("TIMEOUT".into(), |t| format!("{t:.0}s")),
                r.total_bytes as f64 / 1e6
            );
            results.push(r);
        }
    }

    println!("\nFigure 3: seconds for m peers (20k keys each) to join {n_stable} stable peers");
    let mut headers: Vec<String> = vec!["scenario".into()];
    headers.extend(joiner_counts.iter().map(|m| format!("m={m}")));
    let headers: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = scenarios
        .iter()
        .map(|s| {
            let mut row = vec![s.name.to_string()];
            for &m in &joiner_counts {
                let cell = results
                    .iter()
                    .find(|r| r.scenario == s.name && r.m_joiners == m)
                    .and_then(|r| r.time_s)
                    .map_or("-".into(), |t| format!("{t:.0}"));
                row.push(cell);
            }
            row
        })
        .collect();
    print_table(&headers, &rows);
    write_json("fig3_join", &results);
}
