//! Table 1: costs of PlanetP's basic operations, reported as a fixed
//! overhead plus a marginal per-key cost (fit by two-point linear
//! regression over a size sweep, like the paper's "a + b·n" rows).
//! Criterion benches (`cargo bench -p planetp-bench --bench micro`)
//! measure the same operations with full statistics; this binary prints
//! the paper-shaped table.

use planetp_bench::{print_table, write_json};
use planetp_bloom::{BloomFilter, CompressedBloom};
use planetp_index::InvertedIndex;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Row {
    operation: String,
    fixed_ms: f64,
    per_key_us: f64,
}

/// Median-of-5 wall time of `f`, milliseconds.
fn time_ms(mut f: impl FnMut()) -> f64 {
    let mut samples = Vec::with_capacity(5);
    for _ in 0..5 {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_secs_f64() * 1000.0);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    samples[2]
}

/// Fit cost(n) = fixed + slope·n from two measurements.
fn fit(n1: usize, t1: f64, n2: usize, t2: f64) -> (f64, f64) {
    let slope = (t2 - t1) / (n2 - n1) as f64;
    let fixed = (t1 - slope * n1 as f64).max(0.0);
    (fixed, slope)
}

fn keys(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("term-{i}")).collect()
}

fn main() {
    let (n1, n2) = (5_000usize, 50_000usize);
    let k1 = keys(n1);
    let k2 = keys(n2);
    let mut rows: Vec<Row> = Vec::new();
    let mut push = |op: &str, fixed: f64, slope_ms: f64| {
        rows.push(Row {
            operation: op.to_string(),
            fixed_ms: fixed,
            per_key_us: slope_ms * 1000.0,
        });
    };

    // Bloom filter insertion.
    let t1 = time_ms(|| {
        let mut f = BloomFilter::with_paper_defaults();
        for k in &k1 {
            f.insert(k);
        }
    });
    let t2 = time_ms(|| {
        let mut f = BloomFilter::with_paper_defaults();
        for k in &k2 {
            f.insert(k);
        }
    });
    let (fixed, slope) = fit(n1, t1, n2, t2);
    push("Bloom filter insertion", fixed, slope);

    // Bloom filter search.
    let mut filter = BloomFilter::with_paper_defaults();
    for k in &k2 {
        filter.insert(k);
    }
    let t1 = time_ms(|| {
        for k in &k1 {
            std::hint::black_box(filter.contains(k));
        }
    });
    let t2 = time_ms(|| {
        for k in &k2 {
            std::hint::black_box(filter.contains(k));
        }
    });
    let (fixed, slope) = fit(n1, t1, n2, t2);
    push("Bloom filter search", fixed, slope);

    // Compress / decompress (per key *in filter*).
    let mut f1 = BloomFilter::with_paper_defaults();
    for k in &k1 {
        f1.insert(k);
    }
    let c1t = time_ms(|| {
        std::hint::black_box(CompressedBloom::compress(&f1));
    });
    let c2t = time_ms(|| {
        std::hint::black_box(CompressedBloom::compress(&filter));
    });
    let (fixed, slope) = fit(n1, c1t, n2, c2t);
    push("Bloom filter compress", fixed, slope);

    let c1 = CompressedBloom::compress(&f1);
    let c2 = CompressedBloom::compress(&filter);
    let d1 = time_ms(|| {
        std::hint::black_box(c1.decompress());
    });
    let d2 = time_ms(|| {
        std::hint::black_box(c2.decompress());
    });
    let (fixed, slope) = fit(n1, d1, n2, d2);
    push("Bloom filter decompress", fixed, slope);

    // Inverted index insertion (one doc per 100 keys).
    let index_of = |ks: &[String]| {
        let mut idx = InvertedIndex::new();
        for (d, chunk) in ks.chunks(100).enumerate() {
            idx.add_document(d as u64, chunk);
        }
        idx
    };
    let t1 = time_ms(|| {
        std::hint::black_box(index_of(&k1));
    });
    let t2 = time_ms(|| {
        std::hint::black_box(index_of(&k2));
    });
    let (fixed, slope) = fit(n1, t1, n2, t2);
    push("Insertion into inverted index", fixed, slope);

    // Inverted index search.
    let idx = index_of(&k2);
    let t1 = time_ms(|| {
        for k in &k1 {
            std::hint::black_box(idx.postings(k));
        }
    });
    let t2 = time_ms(|| {
        for k in &k2 {
            std::hint::black_box(idx.postings(k));
        }
    });
    let (fixed, slope) = fit(n1, t1, n2, t2);
    push("Search inverted index", fixed, slope);

    println!("Table 1: costs of PlanetP's basic operations (this machine, release build)");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.operation.clone(),
                format!("{:.2} ms + {:.4} us/key", r.fixed_ms, r.per_key_us),
            ]
        })
        .collect();
    print_table(&["Operation", "Cost (fixed + marginal)"], &table);
    println!(
        "\nPaper reference (after JIT): BF insert 4ms + 11us/key; BF search \
         10us/key; compress 21ms + 1us/key; decompress 5us/key; index insert \
         14ms + 24us/key; index search ~0.1us/key. Expect this Rust build to \
         be comfortably at or below those marginal costs."
    );
    write_json("table1_micro", &rows);
}
