//! Figure 2: time (a), aggregate network volume (b), and average
//! per-peer bandwidth (c) to propagate a single 1000-key Bloom filter
//! diff through stable communities of increasing size, under six
//! scenarios: LAN, LAN-AE (anti-entropy-only baseline), DSL-10/30/60
//! (gossip interval sweep), and MIX (Saroiu link mixture).

use planetp_bench::{print_table, scale_from_args, write_json, Scale};
use planetp_simnet::experiments::{propagation, PropagationResult, Scenario};

fn main() {
    let scale = scale_from_args();
    let sizes: Vec<usize> = match scale {
        Scale::Quick => vec![100, 200],
        Scale::Default => vec![200, 500, 1000, 1500, 2000],
        Scale::Full => vec![200, 500, 1000, 1500, 2000, 3000],
    };
    let deadline_s = 4 * 3600;
    let mut results: Vec<PropagationResult> = Vec::new();
    for scenario in Scenario::fig2_all() {
        for &n in &sizes {
            let r = propagation(scenario, n, 0x00F2, deadline_s);
            eprintln!(
                "{:8} n={:5} time={:>8} bytes={:>12}",
                r.scenario,
                r.n,
                r.time_s.map_or("TIMEOUT".into(), |t| format!("{t:.0}s")),
                r.total_bytes,
            );
            results.push(r);
        }
    }
    // The paper continues DSL-30 to 5000 peers.
    if scale == Scale::Full {
        let dsl30 = Scenario::fig2_all()[3];
        for n in [4000usize, 5000] {
            let r = propagation(dsl30, n, 0x00F2, deadline_s);
            eprintln!("{:8} n={:5} time={:?}", r.scenario, r.n, r.time_s);
            results.push(r);
        }
    }

    println!("\nFigure 2(a): propagation time (seconds) vs community size");
    by_scenario(&results, |r| {
        r.time_s.map_or("-".into(), |t| format!("{t:.0}"))
    });
    println!("\nFigure 2(b): aggregate network volume (MB) vs community size");
    by_scenario(&results, |r| format!("{:.2}", r.total_bytes as f64 / 1e6));
    println!("\nFigure 2(c): average per-peer bandwidth (B/s) vs community size");
    by_scenario(&results, |r| format!("{:.1}", r.per_peer_bw_bps));
    write_json("fig2_propagation", &results);
}

fn by_scenario(
    results: &[planetp_simnet::experiments::PropagationResult],
    f: impl Fn(&PropagationResult) -> String,
) {
    let mut sizes: Vec<usize> = results.iter().map(|r| r.n).collect();
    sizes.sort_unstable();
    sizes.dedup();
    let mut scenarios: Vec<&str> = results.iter().map(|r| r.scenario).collect();
    scenarios.dedup();
    let mut headers: Vec<String> = vec!["scenario".into()];
    headers.extend(sizes.iter().map(|n| format!("n={n}")));
    let headers: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = scenarios
        .iter()
        .map(|s| {
            let mut row = vec![s.to_string()];
            for &n in &sizes {
                let cell = results
                    .iter()
                    .find(|r| r.scenario == *s && r.n == n)
                    .map_or("-".into(), &f);
                row.push(cell);
            }
            row
        })
        .collect();
    print_table(&headers, &rows);
}
