//! Query latency: sequential rank-order walk vs. grouped fan-out
//! (§5.2's "groups of m"), cold vs. warm query cache, over live TCP
//! nodes with an injected per-operation network delay so the
//! parallelism is measured against a realistic (and deterministic) RTT
//! rather than loopback noise.
//!
//! Every remote peer delays each inbound operation by a fixed amount;
//! one search RPC crosses three delayed operations on the target
//! (accept admission, request read, reply write), so a contact costs
//! ~3× the knob. A sequential walk pays that per peer; the grouped walk
//! pays it per group.
//!
//! Also times `QueryCache::plan` in-process (no sockets) to show the
//! directory-versioned cache's cold/warm cost, and dumps the searcher's
//! `search.cache.*` / `pool.*` counters.
//!
//! Emits `BENCH_query_latency.json` when `PLANETP_JSON_DIR` is set.

use planetp::faults::{FaultInjector, FaultPlan, FaultRules};
use planetp::live::{FanoutConfig, LiveConfig, LiveNode};
use planetp::ConnConfig;
use planetp_bench::{print_table, scale_from_args, write_json, Scale};
use planetp_bloom::{BloomFilter, BloomParams};
use planetp_gossip::GossipConfig;
use planetp_obs::names;
use planetp_search::{PeerFilterRef, QueryCache};
use serde::Serialize;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Injected delay per inbound operation on every remote peer (ms); a
/// full contact crosses three such operations.
const DELAY_MS: u64 = 15;
/// Grouped fan-out width for the parallel series.
const GROUP_SIZE: usize = 5;

#[derive(Serialize)]
struct SeriesRow {
    series: String,
    group_size: usize,
    cache: String,
    runs: usize,
    median_ms: f64,
    min_ms: f64,
    max_ms: f64,
}

#[derive(Serialize)]
struct PlanMicro {
    peers: usize,
    terms_per_filter: usize,
    cold_us: f64,
    warm_us: f64,
}

#[derive(Serialize)]
struct CacheCounters {
    hits: u64,
    misses: u64,
    peer_refreshes: u64,
    rebuilds: u64,
    pool_jobs: u64,
    search_groups: u64,
}

#[derive(Serialize)]
struct ConnSeries {
    cold_ms: f64,
    warm_median_ms: f64,
}

#[derive(Serialize)]
struct ConnCounters {
    opened: u64,
    reused: u64,
    stale_reconnects: u64,
}

#[derive(Serialize)]
struct ConnReport {
    peers: usize,
    delay_ms: u64,
    runs: usize,
    pooled: ConnSeries,
    per_rpc: ConnSeries,
    pooled_searcher_conn: ConnCounters,
}

#[derive(Serialize)]
struct Report {
    peers: usize,
    delay_ms: u64,
    group_size: usize,
    converged: bool,
    rows: Vec<SeriesRow>,
    parallel_speedup_warm: f64,
    plan_micro: PlanMicro,
    searcher_counters: CacheCounters,
}

fn node_config(seed: u64, faults: Option<Arc<FaultInjector>>) -> LiveConfig {
    LiveConfig {
        gossip: GossipConfig {
            base_interval_ms: 40,
            max_interval_ms: 150,
            slowdown_ms: 25,
            ..GossipConfig::default()
        },
        io_timeout: Duration::from_secs(2),
        seed,
        fanout: FanoutConfig {
            // Per-call group size overrides this; size the pool so one
            // full group overlaps completely.
            pool_threads: GROUP_SIZE + 1,
            ..FanoutConfig::default()
        },
        faults,
        ..LiveConfig::default()
    }
}

fn delayed(seed: u64) -> Option<Arc<FaultInjector>> {
    Some(Arc::new(FaultInjector::new(
        seed,
        FaultPlan {
            inbound: FaultRules {
                delay: 1.0,
                delay_ms: DELAY_MS,
                ..FaultRules::default()
            },
            outbound: FaultRules::default(),
        },
    )))
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    samples[samples.len() / 2]
}

/// Time `runs` executions of a ranked query; the query string differs
/// per run for cold series (fresh cache terms) and repeats for warm.
fn time_series(node: &LiveNode, queries: &[String], k: usize, group: usize) -> (Vec<f64>, usize) {
    let mut ms = Vec::with_capacity(queries.len());
    let mut hits = usize::MAX;
    for q in queries {
        let t = Instant::now();
        let r = node.search_ranked_grouped(q, k, group).expect("search");
        ms.push(t.elapsed().as_secs_f64() * 1000.0);
        hits = hits.min(r.hits.len());
    }
    (ms, hits)
}

/// In-process `QueryCache::plan` timing over synthetic filters: cold
/// (first plan, probes every filter) vs. warm (same terms, same
/// directory versions — pure cache read).
fn plan_micro(peers: usize) -> PlanMicro {
    const TERMS: usize = 2_000;
    let filters: Vec<BloomFilter> = (0..peers)
        .map(|p| {
            let mut f = BloomFilter::new(BloomParams::for_capacity(TERMS, 1e-4));
            for t in 0..TERMS {
                f.insert(&format!("w{}", (p * 131 + t * 7) % (TERMS * 2)));
            }
            f
        })
        .collect();
    let view: Vec<PeerFilterRef<'_>> = filters
        .iter()
        .enumerate()
        .map(|(i, f)| PeerFilterRef {
            id: i as u64 + 1,
            version: (0, 0),
            filter: f,
        })
        .collect();
    let q: Vec<String> = (0..4).map(|i| format!("w{}", i * 31)).collect();

    let reps = 50;
    let mut cold = Vec::with_capacity(reps);
    for _ in 0..reps {
        let mut cache = QueryCache::new();
        let t = Instant::now();
        std::hint::black_box(cache.plan(&q, &view));
        cold.push(t.elapsed().as_secs_f64() * 1e6);
    }
    let mut cache = QueryCache::new();
    cache.plan(&q, &view);
    let mut warm = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(cache.plan(&q, &view));
        warm.push(t.elapsed().as_secs_f64() * 1e6);
    }
    PlanMicro {
        peers,
        terms_per_filter: TERMS,
        cold_us: median(&mut cold),
        warm_us: median(&mut warm),
    }
}

fn main() {
    let scale = scale_from_args();
    let (peers, runs) = match scale {
        Scale::Quick => (8usize, 3usize),
        Scale::Full | Scale::Default => (20, 5),
    };

    // Community: node 0 searches (no injector), everyone else answers
    // through a delayed link.
    let founder = LiveNode::start(0, node_config(1_000, None), None).expect("founder");
    let bootstrap = (0u32, founder.addr().to_string());
    let mut nodes = vec![founder];
    for id in 1..peers as u32 {
        let seed = 1_000 + u64::from(id);
        nodes.push(
            LiveNode::start(
                id,
                node_config(seed, delayed(seed)),
                Some(bootstrap.clone()),
            )
            .expect("node"),
        );
    }

    // Every document carries the shared term plus one fresh token per
    // planned cold run, so cold queries miss the cache while still
    // matching every peer.
    let cold_tokens: Vec<String> = (0..2 * runs).map(|i| format!("cold{i}")).collect();
    let body_suffix = cold_tokens.join(" ");
    for (i, n) in nodes.iter().enumerate() {
        n.publish(&format!(
            "<doc><body>fanout entry{i} warmrun {body_suffix}</body></doc>"
        ))
        .expect("publish");
    }
    let deadline = Instant::now()
        + if matches!(scale, Scale::Quick) {
            Duration::from_secs(60)
        } else {
            Duration::from_secs(120)
        };
    let converged = loop {
        let d = nodes[0].directory_digest();
        if nodes
            .iter()
            .all(|n| n.directory_size() == peers && n.directory_digest() == d)
        {
            break true;
        }
        if Instant::now() >= deadline {
            break false;
        }
        std::thread::sleep(Duration::from_millis(50));
    };
    if !converged {
        eprintln!("warning: community not fully converged; timings may undercount peers");
    }

    let searcher = &nodes[0];
    let k = peers; // never satisfied early: every peer must be walked
    let warm_q: Vec<String> = (0..runs).map(|_| "fanout warmrun".to_string()).collect();

    // Prime the cache and the health table once before any timed run.
    let _ = searcher.search_ranked_grouped("fanout warmrun", k, GROUP_SIZE);

    let mut rows = Vec::new();
    let mut push = |series: &str, group: usize, cache: &str, ms: &mut Vec<f64>, hits: usize| {
        eprintln!("{series}: min hits {hits}/{peers}");
        rows.push(SeriesRow {
            series: series.to_string(),
            group_size: group,
            cache: cache.to_string(),
            runs: ms.len(),
            median_ms: median(ms),
            min_ms: ms.iter().cloned().fold(f64::INFINITY, f64::min),
            max_ms: ms.iter().cloned().fold(0.0, f64::max),
        });
    };

    let cold_seq: Vec<String> = (0..runs)
        .map(|i| format!("fanout {}", cold_tokens[i]))
        .collect();
    let (mut ms, hits) = time_series(searcher, &cold_seq, k, 1);
    push("sequential", 1, "cold", &mut ms, hits);
    let (mut ms, hits) = time_series(searcher, &warm_q, k, 1);
    let seq_warm = median(&mut ms.clone());
    push("sequential", 1, "warm", &mut ms, hits);

    let cold_par: Vec<String> = (0..runs)
        .map(|i| format!("fanout {}", cold_tokens[runs + i]))
        .collect();
    let (mut ms, hits) = time_series(searcher, &cold_par, k, GROUP_SIZE);
    push("parallel", GROUP_SIZE, "cold", &mut ms, hits);
    let (mut ms, hits) = time_series(searcher, &warm_q, k, GROUP_SIZE);
    let par_warm = median(&mut ms.clone());
    push("parallel", GROUP_SIZE, "warm", &mut ms, hits);

    let snap = searcher.metrics_snapshot();
    let counters = CacheCounters {
        hits: snap.counter(names::SEARCH_CACHE_HITS),
        misses: snap.counter(names::SEARCH_CACHE_MISSES),
        peer_refreshes: snap.counter(names::SEARCH_CACHE_PEER_REFRESHES),
        rebuilds: snap.counter(names::SEARCH_CACHE_REBUILDS),
        pool_jobs: snap.counter(names::POOL_JOBS),
        search_groups: snap.counter(names::SEARCH_GROUPS),
    };
    let micro = plan_micro(peers);

    println!(
        "Query latency, {peers} live peers, {DELAY_MS} ms injected delay per \
         inbound op (~{} ms per contact):",
        3 * DELAY_MS
    );
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.series.clone(),
                r.group_size.to_string(),
                r.cache.clone(),
                format!("{:.1}", r.median_ms),
                format!("{:.1}", r.min_ms),
                format!("{:.1}", r.max_ms),
            ]
        })
        .collect();
    print_table(
        &[
            "series",
            "group",
            "cache",
            "median(ms)",
            "min(ms)",
            "max(ms)",
        ],
        &table,
    );
    let speedup = if par_warm > 0.0 {
        seq_warm / par_warm
    } else {
        0.0
    };
    println!("\ngrouped fan-out speedup (warm, group {GROUP_SIZE} vs 1): {speedup:.2}x");
    println!(
        "QueryCache::plan over {} synthetic filters: cold {:.1} us, warm {:.1} us",
        micro.peers, micro.cold_us, micro.warm_us
    );
    println!(
        "searcher counters: cache {}h/{}m, {} refreshes, {} rebuilds, {} pool \
         jobs, {} groups",
        counters.hits,
        counters.misses,
        counters.peer_refreshes,
        counters.rebuilds,
        counters.pool_jobs,
        counters.search_groups
    );

    write_json(
        "BENCH_query_latency",
        &Report {
            peers,
            delay_ms: DELAY_MS,
            group_size: GROUP_SIZE,
            converged,
            rows,
            parallel_speedup_warm: speedup,
            plan_micro: micro,
            searcher_counters: counters,
        },
    );

    // Pooled vs. connect-per-RPC: two fresh searchers join the same
    // community — one keeping the default connection pool, one forced
    // to open a new TCP connection for every RPC. A warm pooled
    // contact crosses two injected delay operations on the target
    // (request read + reply write); a connect-per-RPC contact crosses
    // three (admission + read + write), so the pool's warm win is
    // structural, not scheduler luck. Both searchers run the identical
    // protocol: one connection-cold search, then `runs` warm repeats.
    let pooled = LiveNode::start(
        peers as u32,
        node_config(2_000, None),
        Some(bootstrap.clone()),
    )
    .expect("pooled searcher");
    let mut per_rpc_cfg = node_config(2_001, None);
    per_rpc_cfg.conn = ConnConfig {
        enabled: false,
        ..ConnConfig::default()
    };
    let per_rpc = LiveNode::start(peers as u32 + 1, per_rpc_cfg, Some(bootstrap.clone()))
        .expect("per-rpc searcher");
    let total = peers + 2;
    let join_deadline = Instant::now() + Duration::from_secs(60);
    while (pooled.directory_size() < total || per_rpc.directory_size() < total)
        && Instant::now() < join_deadline
    {
        std::thread::sleep(Duration::from_millis(50));
    }

    let measure = |node: &LiveNode, label: &str| -> ConnSeries {
        let t = Instant::now();
        let r = node
            .search_ranked_grouped("fanout warmrun", k, GROUP_SIZE)
            .expect("search");
        let cold_ms = t.elapsed().as_secs_f64() * 1000.0;
        eprintln!("{label}: cold hits {}/{peers}", r.hits.len());
        let (mut ms, hits) = time_series(node, &warm_q, k, GROUP_SIZE);
        eprintln!("{label}: warm min hits {hits}/{peers}");
        ConnSeries {
            cold_ms,
            warm_median_ms: median(&mut ms),
        }
    };
    let pooled_series = measure(&pooled, "pooled");
    let per_rpc_series = measure(&per_rpc, "per-rpc");
    let psnap = pooled.metrics_snapshot();
    let conn_counters = ConnCounters {
        opened: psnap.counter(names::CONN_OPENED),
        reused: psnap.counter(names::CONN_REUSED),
        stale_reconnects: psnap.counter(names::CONN_STALE_RECONNECTS),
    };

    println!("\nConnection pool vs. connect-per-RPC (same community, warm cache):");
    print_table(
        &["transport", "cold(ms)", "warm median(ms)"],
        &[
            vec![
                "pooled".to_string(),
                format!("{:.1}", pooled_series.cold_ms),
                format!("{:.1}", pooled_series.warm_median_ms),
            ],
            vec![
                "connect-per-rpc".to_string(),
                format!("{:.1}", per_rpc_series.cold_ms),
                format!("{:.1}", per_rpc_series.warm_median_ms),
            ],
        ],
    );
    println!(
        "pooled searcher conn counters: {} opened, {} reused, {} stale reconnects",
        conn_counters.opened, conn_counters.reused, conn_counters.stale_reconnects
    );

    write_json(
        "BENCH_conn",
        &ConnReport {
            peers,
            delay_ms: DELAY_MS,
            runs,
            pooled: pooled_series,
            per_rpc: per_rpc_series,
            pooled_searcher_conn: conn_counters,
        },
    );
}
