//! Figure 6: search efficiency on the AP89-like collection.
//!
//! (a) average recall and precision vs k, TFxIDF (centralized oracle)
//!     vs TFxIPF with the adaptive stopping heuristic on a Weibull
//!     distribution of documents over 400 peers;
//! (b) TFxIPF recall vs community size at k = 20;
//! (c) peers contacted vs k — TFxIPF adaptive vs "Best" (the minimum
//!     number of peers that hold the oracle's top-k).

use planetp_bench::retrieval::{build_setup, eval_tfidf, eval_tfxipf, QualityPoint};
use planetp_bench::{print_table, scale_from_args, write_json, Scale};
use planetp_bloom::BloomParams;
use planetp_corpus::{ap89_like, ap89_like_scaled, Collection, Partition};
use planetp_search::StoppingRule;
use serde::Serialize;

#[derive(Serialize)]
struct Fig6Json {
    fig6a_idf: Vec<QualityPoint>,
    fig6a_ipf: Vec<QualityPoint>,
    fig6b_recall_vs_n: Vec<(usize, f64)>,
    fig6c: Vec<(usize, f64, f64)>,
}

fn main() {
    let scale = scale_from_args();
    let (spec, num_peers, ks, sizes_6b): (_, usize, Vec<usize>, Vec<usize>) = match scale {
        Scale::Quick => (
            ap89_like_scaled(40),
            100,
            vec![10, 20, 50],
            vec![50, 100, 200],
        ),
        Scale::Default => (
            ap89_like_scaled(8),
            400,
            vec![10, 20, 50, 100, 150, 200, 300, 400],
            vec![100, 200, 400, 600, 800, 1000],
        ),
        Scale::Full => (
            ap89_like(),
            400,
            vec![10, 20, 50, 100, 150, 200, 300, 400],
            vec![100, 200, 400, 600, 800, 1000],
        ),
    };
    eprintln!("generating {} ({} docs)...", spec.name, spec.num_docs);
    let collection = Collection::generate(spec);
    let params = BloomParams::paper();

    eprintln!("distributing over {num_peers} peers (Weibull)...");
    let setup = build_setup(
        collection.clone(),
        num_peers,
        Partition::paper(),
        params,
        0x00F6,
    );

    let mut idf_points = Vec::new();
    let mut ipf_points = Vec::new();
    for &k in &ks {
        let idf = eval_tfidf(&setup, k);
        let ipf = eval_tfxipf(&setup, k, StoppingRule::Adaptive, 1);
        eprintln!(
            "k={k:4}  IDF R={:.3} P={:.3} | IPF R={:.3} P={:.3} contacted={:.1}",
            idf.recall, idf.precision, ipf.recall, ipf.precision, ipf.avg_contacted
        );
        idf_points.push(idf);
        ipf_points.push(ipf);
    }

    println!(
        "\nFigure 6(a): average recall/precision vs k ({} over {num_peers} peers)",
        collection.spec.name
    );
    let rows: Vec<Vec<String>> = ks
        .iter()
        .enumerate()
        .map(|(i, &k)| {
            vec![
                k.to_string(),
                format!("{:.3}", idf_points[i].recall),
                format!("{:.3}", idf_points[i].precision),
                format!("{:.3}", ipf_points[i].recall),
                format!("{:.3}", ipf_points[i].precision),
            ]
        })
        .collect();
    print_table(&["k", "IDF R", "IDF P", "IPF Ad.W R", "IPF Ad.W P"], &rows);

    // Fig 6(b): recall vs community size at fixed k=20.
    println!("\nFigure 6(b): TFxIPF recall vs community size (k = 20)");
    let mut fig6b = Vec::new();
    let mut rows = Vec::new();
    for &n in &sizes_6b {
        let s = build_setup(collection.clone(), n, Partition::paper(), params, 0x00F6);
        let idf = eval_tfidf(&s, 20);
        let ipf = eval_tfxipf(&s, 20, StoppingRule::Adaptive, 1);
        rows.push(vec![
            n.to_string(),
            format!("{:.3}", idf.recall),
            format!("{:.3}", ipf.recall),
        ]);
        fig6b.push((n, ipf.recall));
    }
    print_table(&["peers", "IDF R", "IPF Ad.W R"], &rows);

    // Fig 6(c): peers contacted vs k.
    println!("\nFigure 6(c): peers contacted vs k ({num_peers} peers)");
    let mut fig6c = Vec::new();
    let rows: Vec<Vec<String>> = ks
        .iter()
        .enumerate()
        .map(|(i, &k)| {
            fig6c.push((k, ipf_points[i].avg_contacted, idf_points[i].avg_contacted));
            vec![
                k.to_string(),
                format!("{:.1}", ipf_points[i].avg_contacted),
                format!("{:.1}", idf_points[i].avg_contacted),
            ]
        })
        .collect();
    print_table(&["k", "IPF Ad.W contacted", "Best"], &rows);
    println!(
        "\nExpected shape: IPF tracks IDF closely (slightly behind at small k, \
         catching up at large k); contacts grow with k and exceed Best."
    );

    write_json(
        "fig6_search",
        &Fig6Json {
            fig6a_idf: idf_points,
            fig6a_ipf: ipf_points,
            fig6b_recall_vs_n: fig6b,
            fig6c,
        },
    );
}
