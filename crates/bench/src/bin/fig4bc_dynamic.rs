//! Figures 4(b) and 4(c): normal operation of a dynamic community —
//! 40% of members always online, 60% cycling with exponential
//! online/offline periods (means 60/140 minutes), 5% of rejoins
//! carrying 1000 new keys. 4(b) is the convergence-time CDF for LAN
//! and bandwidth-aware MIX; 4(c) the aggregate gossiping bandwidth over
//! time.

use planetp_bench::{cdf_headers, cdf_row, print_table, scale_from_args, write_json, Scale};
use planetp_simnet::experiments::{dynamic_community, dynamic_scenarios, DynamicConfig};

fn main() {
    let scale = scale_from_args();
    let cfg = match scale {
        Scale::Quick => DynamicConfig {
            total_members: 100,
            duration_s: 3600,
            tail_s: 1200,
            ..DynamicConfig::default()
        },
        Scale::Default => DynamicConfig {
            total_members: 400,
            duration_s: 2 * 3600,
            tail_s: 1800,
            ..DynamicConfig::default()
        },
        Scale::Full => DynamicConfig {
            total_members: 1000,
            duration_s: 4 * 3600,
            tail_s: 1800,
            ..DynamicConfig::default()
        },
    };

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for scenario in dynamic_scenarios() {
        let r = dynamic_community(scenario, cfg, 0x00F4B);
        let lat: Vec<f64> = r.events.iter().filter_map(|e| e.latency_s).collect();
        let missed = r.events.len() - lat.len();
        rows.push(cdf_row(r.scenario, &lat, missed));

        // Figure 4(c): aggregate bandwidth over time, reported as the
        // mean B/s over consecutive 10-minute windows.
        println!(
            "\nFigure 4(c) [{}]: aggregate gossip bandwidth (KB/s) per 10-minute window",
            r.scenario
        );
        let mut brow = Vec::new();
        let windows = cfg.duration_s / 600;
        for w in 0..windows {
            let mean = r.bandwidth.mean_bps(w * 600, (w + 1) * 600 - 1);
            brow.push(format!("{:.1}", mean / 1000.0));
        }
        println!("{}", brow.join("  "));
        json.push(r);
    }
    println!(
        "\nFigure 4(b): convergence-time CDF, dynamic community of {} members",
        cfg.total_members
    );
    print_table(&cdf_headers(), &rows);
    println!(
        "\nExpected shape: LAN tight around a few hundred seconds; MIX more \
         variable (fast peers impeded when they must talk to slow ones)."
    );
    write_json("fig4bc_dynamic", &json);
}
