//! Gossip-parameter ablations, one propagation experiment per setting:
//!
//! - rumor death counter n ∈ {1, 2, 4};
//! - anti-entropy frequency (every {2, 5, 10, 20} rounds) with and
//!   without partial anti-entropy — the trade the paper describes in
//!   §3 ("we would be expending much more bandwidth");
//! - adaptive interval on/off (quiescent traffic after convergence).

use planetp_bench::{print_table, scale_from_args, write_json, Scale};
use planetp_gossip::{Algorithm, GossipConfig};
use planetp_simnet::{LinkClass, SimConfig, Simulator, Table2};
use serde::Serialize;

#[derive(Serialize)]
struct Run {
    label: String,
    time_s: Option<f64>,
    total_mb: f64,
    quiescent_bps: f64,
}

fn run(label: &str, gossip: GossipConfig, n: usize) -> Run {
    let cfg = SimConfig {
        gossip,
        seed: 0xAB2,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(cfg);
    sim.add_stable_community(
        &vec![LinkClass::Dsl512k; n],
        Table2::paper().bf_20000_keys_bytes as u32,
    );
    sim.run_until(5_000);
    let rumor = sim.local_update(0, Table2::paper().bf_1000_keys_bytes as u32);
    let t = sim.track(rumor);
    let mut bytes_at_conv = None;
    let deadline = sim.now() + 3 * 3600 * 1000;
    while sim.now() < deadline {
        sim.run_for(1000);
        if sim.metrics.tracked[t].converged_at.is_some() {
            bytes_at_conv = Some(sim.metrics.total_bytes);
            break;
        }
    }
    let time_s = sim.metrics.tracked[t]
        .latency_ms()
        .map(|ms| ms as f64 / 1000.0);
    let total = bytes_at_conv.unwrap_or(sim.metrics.total_bytes);
    // Quiescent bandwidth: run another 30 sim-minutes after convergence.
    let before = sim.metrics.total_bytes;
    let q_start = sim.now();
    sim.run_for(30 * 60 * 1000);
    let q_bps = (sim.metrics.total_bytes - before) as f64 / ((sim.now() - q_start) as f64 / 1000.0);
    Run {
        label: label.to_string(),
        time_s,
        total_mb: total as f64 / 1e6,
        quiescent_bps: q_bps,
    }
}

fn main() {
    let n = match scale_from_args() {
        Scale::Quick => 100,
        _ => 500,
    };
    let base = GossipConfig::default();
    let mut runs = Vec::new();

    for death_n in [1u32, 2, 4] {
        runs.push(run(
            &format!("rumor death n={death_n}"),
            GossipConfig {
                rumor_death_n: death_n,
                ..base
            },
            n,
        ));
    }
    for ae_every in [2u32, 5, 10, 20] {
        runs.push(run(
            &format!("full AE every {ae_every} rounds"),
            GossipConfig {
                anti_entropy_every: ae_every,
                ..base
            },
            n,
        ));
    }
    runs.push(run(
        "no partial anti-entropy",
        GossipConfig {
            algorithm: Algorithm::PlanetPNoPartialAE,
            ..base
        },
        n,
    ));
    runs.push(run(
        "no adaptive interval (slowdown=0)",
        GossipConfig {
            slowdown_ms: 0,
            ..base
        },
        n,
    ));
    runs.push(run("paper defaults", base, n));

    println!("Gossip ablations: one 1000-key update through {n} DSL peers");
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                r.time_s.map_or("TIMEOUT".into(), |t| format!("{t:.0}")),
                format!("{:.2}", r.total_mb),
                format!("{:.1}", r.quiescent_bps),
            ]
        })
        .collect();
    print_table(
        &[
            "configuration",
            "time (s)",
            "volume (MB)",
            "quiescent B/s (aggregate)",
        ],
        &rows,
    );
    write_json("ablation_gossip", &runs);
}
