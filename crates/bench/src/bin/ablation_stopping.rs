//! Ablation: the adaptive stopping heuristic (eq. 4) against the
//! alternatives §5.2 discusses — the naive first-k rule ("terrible
//! retrieval performance"), fixed patience values, and the exhaustive
//! contact-everyone upper bound.

use planetp_bench::retrieval::{build_setup, eval_tfxipf};
use planetp_bench::{print_table, scale_from_args, write_json, Scale};
use planetp_bloom::BloomParams;
use planetp_corpus::{ap89_like_scaled, Collection, Partition};
use planetp_search::StoppingRule;

fn main() {
    let scale = scale_from_args();
    let (spec, num_peers, ks) = match scale {
        Scale::Quick => (ap89_like_scaled(40), 100, vec![20]),
        _ => (ap89_like_scaled(8), 400, vec![20, 100]),
    };
    eprintln!("generating {}...", spec.name);
    let collection = Collection::generate(spec);
    let setup = build_setup(
        collection,
        num_peers,
        Partition::paper(),
        BloomParams::paper(),
        0xAB1,
    );
    let rules: Vec<(&str, StoppingRule)> = vec![
        ("first-k (naive)", StoppingRule::FirstK),
        ("fixed p=1", StoppingRule::FixedPatience(1)),
        ("adaptive (eq. 4)", StoppingRule::Adaptive),
        ("fixed p=10", StoppingRule::FixedPatience(10)),
        ("all ranked peers", StoppingRule::AllRanked),
    ];
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for &k in &ks {
        for (name, rule) in &rules {
            let p = eval_tfxipf(&setup, k, *rule, 1);
            rows.push(vec![
                k.to_string(),
                name.to_string(),
                format!("{:.3}", p.recall),
                format!("{:.3}", p.precision),
                format!("{:.1}", p.avg_contacted),
            ]);
            json.push((k, name.to_string(), p));
        }
    }
    println!("Ablation: stopping rules for the selection problem ({num_peers} peers)");
    print_table(
        &["k", "rule", "recall", "precision", "peers contacted"],
        &rows,
    );
    println!(
        "\nExpected: first-k recalls worst; adaptive within a whisker of \
         all-ranked at a fraction of the contacts."
    );
    write_json("ablation_stopping", &json);
}
