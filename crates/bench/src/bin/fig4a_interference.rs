//! Figure 4(a): interference between overlapping rumors. Peers join a
//! stable community as a Poisson process (mean interarrival 90 s); the
//! CDF of per-event convergence time is compared with and without the
//! partial anti-entropy component (LAN vs LAN-NPA).

use planetp_bench::{cdf_headers, cdf_row, print_table, scale_from_args, write_json, Scale};
use planetp_simnet::experiments::poisson_join_interference;

fn main() {
    let scale = scale_from_args();
    let (n_stable, n_joins) = match scale {
        Scale::Quick => (100, 15),
        Scale::Default => (500, 60),
        Scale::Full => (1000, 100),
    };
    let mean_interarrival_s = 90.0;
    let settle_s = 3600;

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for partial_ae in [true, false] {
        let r = poisson_join_interference(
            n_stable,
            n_joins,
            mean_interarrival_s,
            partial_ae,
            0x00F4,
            settle_s,
        );
        eprintln!(
            "{}: {} events converged, {} missed the window",
            r.scenario,
            r.latencies_s.len(),
            r.unconverged
        );
        rows.push(cdf_row(r.scenario, &r.latencies_s, r.unconverged));
        json.push(r);
    }
    println!(
        "\nFigure 4(a): convergence-time CDF for Poisson joins \
         ({n_joins} joins into {n_stable} peers, 90s mean interarrival)"
    );
    print_table(&cdf_headers(), &rows);
    println!(
        "\nExpected shape: LAN-NPA (no partial anti-entropy) shows a much \
         heavier tail (p90/p99) than LAN."
    );
    write_json("fig4a_interference", &json);
}
