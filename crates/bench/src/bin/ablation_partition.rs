//! Ablation: Weibull vs uniform document distribution.
//!
//! The paper's companion TR (DCS-TR-483, referenced in §7.3) "also
//! stud[ies] a uniform distribution and show[s] that PlanetP does
//! equally well although it has to contact more peers as documents are
//! more spread out in the community." This harness measures exactly
//! that comparison.

use planetp_bench::retrieval::{build_setup, eval_tfidf, eval_tfxipf};
use planetp_bench::{print_table, scale_from_args, write_json, Scale};
use planetp_bloom::BloomParams;
use planetp_corpus::{ap89_like_scaled, Collection, Partition};
use planetp_search::StoppingRule;
use serde::Serialize;

#[derive(Serialize)]
struct Run {
    partition: String,
    k: usize,
    recall: f64,
    precision: f64,
    avg_contacted: f64,
    best: f64,
}

fn main() {
    let scale = scale_from_args();
    let (spec, num_peers, ks) = match scale {
        Scale::Quick => (ap89_like_scaled(40), 100, vec![20]),
        _ => (ap89_like_scaled(8), 400, vec![20, 100]),
    };
    eprintln!("generating {}...", spec.name);
    let collection = Collection::generate(spec);

    let mut runs = Vec::new();
    for (name, partition) in [
        ("Weibull", Partition::paper()),
        ("Uniform", Partition::Uniform),
    ] {
        let setup = build_setup(
            collection.clone(),
            num_peers,
            partition,
            BloomParams::paper(),
            0xAB4,
        );
        for &k in &ks {
            let idf = eval_tfidf(&setup, k);
            let ipf = eval_tfxipf(&setup, k, StoppingRule::Adaptive, 1);
            runs.push(Run {
                partition: name.to_string(),
                k,
                recall: ipf.recall,
                precision: ipf.precision,
                avg_contacted: ipf.avg_contacted,
                best: idf.avg_contacted,
            });
        }
    }
    println!("Ablation: document distribution across {num_peers} peers (TFxIPF adaptive)");
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.partition.clone(),
                r.k.to_string(),
                format!("{:.3}", r.recall),
                format!("{:.3}", r.precision),
                format!("{:.1}", r.avg_contacted),
                format!("{:.1}", r.best),
            ]
        })
        .collect();
    print_table(
        &["partition", "k", "recall", "precision", "contacted", "best"],
        &rows,
    );
    println!(
        "\nExpected (companion TR): quality roughly equal, but the uniform \
         distribution spreads matching documents over more peers, so more \
         are contacted."
    );
    write_json("ablation_partition", &runs);
}
