//! Figure 5: convergence time in a dynamic community of 2000 members.
//! LAN and MIX as in Fig 4(b); MIX-F and MIX-S report the time until
//! all online *fast* peers learn of events originated by fast and slow
//! peers respectively, showing that bandwidth-aware gossiping lets the
//! fast core converge quickly without hurting slow peers further.

use planetp_bench::{cdf_headers, cdf_row, print_table, scale_from_args, write_json, Scale};
use planetp_simnet::experiments::{dynamic_community, dynamic_scenarios, DynamicConfig};

fn main() {
    let scale = scale_from_args();
    let cfg = match scale {
        Scale::Quick => DynamicConfig {
            total_members: 150,
            duration_s: 3600,
            tail_s: 1200,
            ..DynamicConfig::default()
        },
        Scale::Default => DynamicConfig {
            total_members: 600,
            duration_s: 2 * 3600,
            tail_s: 1800,
            ..DynamicConfig::default()
        },
        Scale::Full => DynamicConfig {
            total_members: 2000,
            duration_s: 4 * 3600,
            tail_s: 1800,
            ..DynamicConfig::default()
        },
    };

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for scenario in dynamic_scenarios() {
        let r = dynamic_community(scenario, cfg, 0x00F5);
        let lat: Vec<f64> = r.events.iter().filter_map(|e| e.latency_s).collect();
        let missed = r.events.len() - lat.len();
        rows.push(cdf_row(r.scenario, &lat, missed));
        if r.scenario == "MIX" {
            // MIX-F: events from fast origins, fast-core convergence.
            let fast: Vec<f64> = r
                .events
                .iter()
                .filter(|e| e.fast_origin)
                .filter_map(|e| e.latency_fast_s)
                .collect();
            let fast_missed = r
                .events
                .iter()
                .filter(|e| e.fast_origin && e.latency_fast_s.is_none())
                .count();
            rows.push(cdf_row("MIX-F", &fast, fast_missed));
            // MIX-S: events from slow origins, same convergence condition.
            let slow: Vec<f64> = r
                .events
                .iter()
                .filter(|e| !e.fast_origin)
                .filter_map(|e| e.latency_fast_s)
                .collect();
            let slow_missed = r
                .events
                .iter()
                .filter(|e| !e.fast_origin && e.latency_fast_s.is_none())
                .count();
            rows.push(cdf_row("MIX-S", &slow, slow_missed));
        }
        json.push(r);
    }
    println!(
        "\nFigure 5: convergence-time CDF, dynamic community of {} members",
        cfg.total_members
    );
    print_table(&cdf_headers(), &rows);
    println!(
        "\nExpected shape: MIX-F close to LAN (fast peers learn events \
         efficiently); MIX-S somewhat slower but not pathological."
    );
    write_json("fig5_dynamic2000", &json);
}
