//! Overload goodput: prioritized load shedding on vs. off, over a live
//! community driven past its service capacity.
//!
//! Every serving peer delays each inbound operation (the same injected
//! per-op RTT the query-latency bench uses) and runs a deliberately
//! small admission gate, so a handful of concurrent searchers offer
//! more load than the community can serve. The experiment runs twice:
//!
//! - **shedding on** (the default runtime behavior): the admission
//!   queue is bounded, overflow is answered `Busy` immediately, and
//!   queue waits are capped well below the client timeout;
//! - **shedding off** (`--no-shedding` baseline): arrivals queue
//!   without bound and wait up to the client's own timeout — the
//!   classic overload collapse where servers burn service time on
//!   requests whose callers already gave up.
//!
//! Goodput is *useful* work: remote hits delivered to searchers per
//! second. The run asserts that shedding does not cost goodput
//! (on ≥ 0.9 × off) and that it bounds tail latency (p99 under the
//! client timeout) — then emits `BENCH_overload.json` when
//! `PLANETP_JSON_DIR` is set.
//!
//! Knobs: `--quick` / `--full` (scale), `--admission-queue <n>`
//! (bounded queue capacity for the shedding series), `--no-shedding`
//! (run only the baseline series, skipping the comparison).

use planetp::faults::{FaultInjector, FaultPlan, FaultRules};
use planetp::live::{FanoutConfig, LiveConfig, LiveNode};
use planetp::AdmissionConfig;
use planetp_bench::{print_table, scale_from_args, write_json, Scale};
use planetp_gossip::GossipConfig;
use planetp_obs::names;
use serde::Serialize;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Injected delay per inbound operation on every serving peer (ms); a
/// full contact crosses roughly three such operations.
const DELAY_MS: u64 = 40;
/// Client-side I/O timeout — the latency cliff the baseline falls off.
const IO_TIMEOUT: Duration = Duration::from_secs(2);
/// Concurrent service slots per peer: small, so saturation is cheap.
const MAX_ACTIVE: usize = 2;

#[derive(Serialize, Clone)]
struct SeriesReport {
    shedding: bool,
    queue_capacity: usize,
    searches: usize,
    search_errors: usize,
    hits_total: usize,
    goodput_hits_per_s: f64,
    searches_per_s: f64,
    median_ms: f64,
    p99_ms: f64,
    peers_shed_total: usize,
    peers_failed_total: usize,
    busy_received: u64,
    admission_admitted: u64,
    admission_shed: u64,
    admission_expired: u64,
}

#[derive(Serialize)]
struct Report {
    servers: usize,
    searchers: usize,
    window_secs: f64,
    delay_ms: u64,
    max_active: usize,
    series: Vec<SeriesReport>,
    goodput_ratio_on_over_off: Option<f64>,
}

fn server_config(seed: u64, shedding: bool, queue_capacity: usize) -> LiveConfig {
    LiveConfig {
        gossip: GossipConfig {
            base_interval_ms: 40,
            max_interval_ms: 150,
            slowdown_ms: 25,
            ..GossipConfig::default()
        },
        io_timeout: IO_TIMEOUT,
        seed,
        admission: AdmissionConfig {
            max_active: MAX_ACTIVE,
            queue_capacity,
            shedding,
            // Protected mode answers `Busy` long before the client
            // gives up; the baseline queues until the caller's own
            // timeout would have fired anyway.
            max_wait_ms: if shedding {
                250
            } else {
                IO_TIMEOUT.as_millis() as u64
            },
            ..AdmissionConfig::default()
        },
        faults: Some(Arc::new(FaultInjector::new(
            seed,
            FaultPlan {
                inbound: FaultRules {
                    delay: 1.0,
                    delay_ms: DELAY_MS,
                    ..FaultRules::default()
                },
                outbound: FaultRules::default(),
            },
        ))),
        ..LiveConfig::default()
    }
}

fn searcher_config(seed: u64, servers: usize) -> LiveConfig {
    LiveConfig {
        gossip: GossipConfig {
            base_interval_ms: 40,
            max_interval_ms: 150,
            slowdown_ms: 25,
            ..GossipConfig::default()
        },
        io_timeout: IO_TIMEOUT,
        seed,
        fanout: FanoutConfig {
            // One full group must overlap completely.
            pool_threads: servers + 1,
            ..FanoutConfig::default()
        },
        ..LiveConfig::default()
    }
}

fn percentile(samples: &mut [f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let idx = ((samples.len() - 1) as f64 * p).round() as usize;
    samples[idx]
}

struct LoadSample {
    latencies_ms: Vec<f64>,
    hits: usize,
    errors: usize,
    shed: usize,
    failed: usize,
}

/// Stand up one community (servers + searchers), converge it, hammer it
/// from every searcher for `window`, and report the aggregate.
fn run_series(
    shedding: bool,
    servers: usize,
    searchers: usize,
    window: Duration,
    queue_capacity: usize,
    seed_base: u64,
) -> SeriesReport {
    let founder = LiveNode::start(0, server_config(seed_base, shedding, queue_capacity), None)
        .expect("founder");
    let bootstrap = (0u32, founder.addr().to_string());
    let mut server_nodes = vec![founder];
    for id in 1..servers as u32 {
        server_nodes.push(
            LiveNode::start(
                id,
                server_config(seed_base + u64::from(id), shedding, queue_capacity),
                Some(bootstrap.clone()),
            )
            .expect("server"),
        );
    }
    let mut searcher_nodes = Vec::new();
    for i in 0..searchers as u32 {
        let id = servers as u32 + i;
        searcher_nodes.push(
            LiveNode::start(
                id,
                searcher_config(seed_base + u64::from(id), servers),
                Some(bootstrap.clone()),
            )
            .expect("searcher"),
        );
    }

    for (i, n) in server_nodes.iter().enumerate() {
        n.publish(&format!(
            "<doc><body>overload corpus entry{i} shared</body></doc>"
        ))
        .expect("publish");
    }

    let total = servers + searchers;
    let deadline = Instant::now() + Duration::from_secs(120);
    let converged = loop {
        let d = server_nodes[0].directory_digest();
        if server_nodes
            .iter()
            .chain(searcher_nodes.iter())
            .all(|n| n.directory_size() == total && n.directory_digest() == d)
        {
            break true;
        }
        if Instant::now() >= deadline {
            break false;
        }
        std::thread::sleep(Duration::from_millis(50));
    };
    if !converged {
        eprintln!("warning: community not fully converged; goodput may undercount");
    }

    // One warm-up search per searcher primes filter mirrors and pools.
    for n in &searcher_nodes {
        let _ = n.search_ranked_grouped("overload shared", servers, servers);
    }

    let samples: Vec<LoadSample> = std::thread::scope(|scope| {
        let handles: Vec<_> = searcher_nodes
            .iter()
            .map(|node| {
                scope.spawn(move || {
                    let mut out = LoadSample {
                        latencies_ms: Vec::new(),
                        hits: 0,
                        errors: 0,
                        shed: 0,
                        failed: 0,
                    };
                    let end = Instant::now() + window;
                    while Instant::now() < end {
                        let t = Instant::now();
                        match node.search_ranked_grouped("overload shared", servers, servers) {
                            Ok(r) => {
                                out.latencies_ms.push(t.elapsed().as_secs_f64() * 1000.0);
                                out.hits += r.hits.len();
                                out.shed += r.coverage.peers_shed;
                                out.failed += r.coverage.peers_failed;
                            }
                            Err(_) => out.errors += 1,
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load thread"))
            .collect()
    });

    let mut latencies: Vec<f64> = samples
        .iter()
        .flat_map(|s| s.latencies_ms.clone())
        .collect();
    let searches = latencies.len();
    let hits_total: usize = samples.iter().map(|s| s.hits).sum();
    let secs = window.as_secs_f64();
    let busy_received: u64 = searcher_nodes
        .iter()
        .map(|n| n.metrics_snapshot().counter(names::BUSY_RECEIVED))
        .sum();
    let (mut admitted, mut shed, mut expired) = (0u64, 0u64, 0u64);
    for n in &server_nodes {
        let m = n.metrics_snapshot();
        admitted += m.counter(names::ADMISSION_ADMITTED);
        shed += m.counter(names::ADMISSION_SHED);
        expired += m.counter(names::ADMISSION_EXPIRED);
    }

    SeriesReport {
        shedding,
        queue_capacity,
        searches,
        search_errors: samples.iter().map(|s| s.errors).sum(),
        hits_total,
        goodput_hits_per_s: hits_total as f64 / secs,
        searches_per_s: searches as f64 / secs,
        median_ms: percentile(&mut latencies, 0.5),
        p99_ms: percentile(&mut latencies, 0.99),
        peers_shed_total: samples.iter().map(|s| s.shed).sum(),
        peers_failed_total: samples.iter().map(|s| s.failed).sum(),
        busy_received,
        admission_admitted: admitted,
        admission_shed: shed,
        admission_expired: expired,
    }
}

fn main() {
    let scale = scale_from_args();
    let args: Vec<String> = std::env::args().collect();
    let queue_capacity = args
        .iter()
        .position(|a| a == "--admission-queue")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(4);
    let baseline_only = args.iter().any(|a| a == "--no-shedding");

    let (servers, searchers, window) = match scale {
        Scale::Quick => (8usize, 3usize, Duration::from_secs(4)),
        Scale::Full | Scale::Default => (8, 4, Duration::from_secs(10)),
    };

    println!(
        "Overload goodput: {servers} servers ({DELAY_MS} ms/op injected, \
         {MAX_ACTIVE} service slots each), {searchers} concurrent searchers, \
         {}s window, queue {queue_capacity}:",
        window.as_secs()
    );

    let mut series = Vec::new();
    if !baseline_only {
        eprintln!("running series: shedding on");
        series.push(run_series(
            true,
            servers,
            searchers,
            window,
            queue_capacity,
            5_000,
        ));
    }
    eprintln!("running series: shedding off (baseline)");
    series.push(run_series(
        false,
        servers,
        searchers,
        window,
        queue_capacity,
        9_000,
    ));

    let table: Vec<Vec<String>> = series
        .iter()
        .map(|s| {
            vec![
                if s.shedding { "on" } else { "off" }.to_string(),
                s.searches.to_string(),
                format!("{:.1}", s.goodput_hits_per_s),
                format!("{:.1}", s.median_ms),
                format!("{:.1}", s.p99_ms),
                s.peers_shed_total.to_string(),
                s.peers_failed_total.to_string(),
                s.admission_expired.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "shedding",
            "searches",
            "hits/s",
            "median(ms)",
            "p99(ms)",
            "shed",
            "failed",
            "expired",
        ],
        &table,
    );

    let ratio = if series.len() == 2 {
        let on = &series[0];
        let off = &series[1];
        let ratio = if off.goodput_hits_per_s > 0.0 {
            on.goodput_hits_per_s / off.goodput_hits_per_s
        } else {
            f64::INFINITY
        };
        println!(
            "\ngoodput shedding-on / shedding-off: {ratio:.2}x \
             (p99 {:.0} ms vs {:.0} ms)",
            on.p99_ms, off.p99_ms
        );
        Some(ratio)
    } else {
        None
    };

    write_json(
        "BENCH_overload",
        &Report {
            servers,
            searchers,
            window_secs: window.as_secs_f64(),
            delay_ms: DELAY_MS,
            max_active: MAX_ACTIVE,
            series: series.clone(),
            goodput_ratio_on_over_off: ratio,
        },
    );

    // The protective claims, enforced: shedding must not cost goodput
    // (within noise) and must keep the tail under the client timeout.
    if let Some(ratio) = ratio {
        let on = &series[0];
        assert!(
            ratio >= 0.9,
            "shedding lost goodput: on/off ratio {ratio:.2} < 0.9"
        );
        assert!(
            on.p99_ms < IO_TIMEOUT.as_secs_f64() * 1000.0,
            "shedding failed to bound tail latency: p99 {:.0} ms >= {:?}",
            on.p99_ms,
            IO_TIMEOUT
        );
        println!("PASS: goodput preserved ({ratio:.2}x) with bounded p99");
    }
}
