//! Replication availability vs storage: does autonomous replication
//! (DESIGN.md §15) actually buy reachability under the §7 churn model,
//! and at what cost?
//!
//! The same community — 40% of members always online, the rest cycling
//! through exponential online/offline periods — runs twice: once with
//! replication off (the paper's baseline, where a document is
//! reachable only while its home peer is online) and once with the
//! availability-aware engine pushing copies of hot, under-replicated
//! documents to the best-available peers. A third, capacity-starved
//! run shows the eviction policy holding storage flat under pressure.
//! The replicas-on run must beat the baseline hit rate while staying
//! under 3x total storage.

use planetp_bench::{print_table, scale_from_args, write_json, Scale};
use planetp_replica::ReplicaConfig;
use planetp_simnet::{run_replica_sim, ReplicaSimConfig, ReplicaSimReport};
use serde::Serialize;

#[derive(Serialize)]
struct Run {
    label: String,
    #[serde(flatten)]
    report: ReplicaSimReport,
}

#[derive(Serialize)]
struct Report {
    peers: usize,
    duration_s: u64,
    runs: Vec<Run>,
}

fn row(label: &str, r: &ReplicaSimReport) -> Vec<String> {
    vec![
        label.to_string(),
        format!("{:.3}", r.hit_rate),
        format!("{:.3}", r.min_hit_rate),
        format!("{:.2}x", r.storage_overhead),
        r.replicas_placed.to_string(),
        r.evictions.to_string(),
        r.samples.to_string(),
    ]
}

fn main() {
    let scale = scale_from_args();
    let (peers, duration_s) = match scale {
        Scale::Quick => (24, 4 * 3600),
        Scale::Default => (40, 12 * 3600),
        Scale::Full => (100, 24 * 3600),
    };
    let base = ReplicaSimConfig {
        peers,
        duration_s,
        ..ReplicaSimConfig::default()
    };

    let off = run_replica_sim(&ReplicaSimConfig {
        replication: None,
        ..base.clone()
    });
    let on = run_replica_sim(&ReplicaSimConfig {
        replication: Some(ReplicaConfig::enabled()),
        ..base.clone()
    });
    let starved = run_replica_sim(&ReplicaSimConfig {
        replication: Some(ReplicaConfig {
            // Room for two replica copies per peer: admission has to
            // evict cold copies to make room for hot ones.
            capacity_bytes: 2 * base.doc_bytes,
            ..ReplicaConfig::enabled()
        }),
        ..base.clone()
    });

    print_table(
        &[
            "scenario",
            "hit_rate",
            "min_hit_rate",
            "storage",
            "replicas",
            "evictions",
            "queries",
        ],
        &[
            row("replicas-off", &off),
            row("replicas-on", &on),
            row("replicas-on (starved)", &starved),
        ],
    );
    println!(
        "\nreplication lifts hit rate {:.3} -> {:.3} at {:.2}x storage",
        off.hit_rate, on.hit_rate, on.storage_overhead
    );

    write_json(
        "BENCH_replica",
        &Report {
            peers,
            duration_s,
            runs: vec![
                Run {
                    label: "replicas-off".into(),
                    report: off.clone(),
                },
                Run {
                    label: "replicas-on".into(),
                    report: on.clone(),
                },
                Run {
                    label: "replicas-on-starved".into(),
                    report: starved,
                },
            ],
        },
    );

    assert!(
        on.hit_rate > off.hit_rate,
        "replication must beat the no-replica baseline: {} vs {}",
        on.hit_rate,
        off.hit_rate
    );
    assert!(
        on.storage_overhead < 3.0,
        "storage overhead {}x exceeds the 3x budget",
        on.storage_overhead
    );
}
