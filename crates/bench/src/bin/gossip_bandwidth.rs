//! Delta-gossip bandwidth: the §7.2 "PlanetP sends diffs of the Bloom
//! filters" claim, measured.
//!
//! An N-peer DSL community runs a churn schedule — a fixed set of
//! publishers each pushing a 1000-key update per round — twice: once
//! with delta rumoring on (Table 2's 3000-byte diff on the wire, the
//! 16 KB filter only on fallback paths) and once with it off (every
//! update re-ships the full filter). Per round we record rumor-class
//! bytes and gossip rounds to convergence; the delta run must move at
//! least 3x fewer rumor bytes while converging in the same rounds.
//!
//! A micro-section times the receiver's per-hop CPU cost on *real*
//! filters: re-decompressing a full 20k-key filter versus toggling a
//! 1000-key diff into the already-decompressed mirror — the
//! "stop re-paying full (de)compression on every hop" half of the
//! optimization.

use planetp_bench::{print_table, scale_from_args, write_json, Scale};
use planetp_bloom::{BloomDiff, BloomFilter, CompressedBloom};
use planetp_gossip::GossipConfig;
use planetp_obs::names;
use planetp_simnet::{LinkClass, NodeId, SimConfig, Simulator, Table2};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Round {
    round: usize,
    rumor_bytes: u64,
    total_bytes: u64,
    /// Gossip rounds from injection to community-wide convergence.
    rounds_to_converge: u64,
}

#[derive(Serialize)]
struct Run {
    label: String,
    rounds: Vec<Round>,
    rumor_bytes_total: u64,
    total_bytes: u64,
    deltas_sent: u64,
    deltas_applied: u64,
    delta_bytes_saved: u64,
}

fn rumor_bytes(sim: &Simulator) -> u64 {
    sim.metrics.bytes_by_kind.get("rumor").copied().unwrap_or(0)
}

fn run(label: &str, delta_updates: bool, n: usize, churn_rounds: usize) -> Run {
    let t2 = Table2::paper();
    let gossip = GossipConfig {
        delta_updates,
        ..GossipConfig::default()
    };
    let interval = u64::from(gossip.base_interval_ms);
    let cfg = SimConfig {
        gossip,
        seed: 0xD17A,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(cfg);
    sim.add_stable_community(&vec![LinkClass::Dsl512k; n], t2.bf_20000_keys_bytes as u32);
    sim.run_until(5_000);

    // Small-churn schedule: the same ~5% of peers republish every
    // round, so their updates chain version-to-version — the common
    // case the delta wire form exists for.
    let publishers: Vec<NodeId> = {
        let k = (n / 20).max(1);
        (0..k).map(|i| (i * n / k) as NodeId).collect()
    };

    let mut rounds = Vec::with_capacity(churn_rounds);
    for round in 0..churn_rounds {
        let rumor_before = rumor_bytes(&sim);
        let total_before = sim.metrics.total_bytes;
        let start = sim.now();
        let trackers: Vec<usize> = publishers
            .iter()
            .map(|&id| {
                let rumor = if delta_updates {
                    sim.local_update_delta(
                        id,
                        t2.bf_20000_keys_bytes as u32,
                        t2.bf_1000_keys_bytes as u32,
                    )
                } else {
                    sim.local_update(id, t2.bf_20000_keys_bytes as u32)
                };
                sim.track(rumor)
            })
            .collect();
        let deadline = sim.now() + 2 * 3600 * 1000;
        while sim.now() < deadline
            && !trackers
                .iter()
                .all(|&t| sim.metrics.tracked[t].converged_at.is_some())
        {
            sim.run_for(500);
        }
        let latency = trackers
            .iter()
            .filter_map(|&t| sim.metrics.tracked[t].converged_at)
            .map(|at| at - start)
            .max()
            .expect("churn round never converged");
        rounds.push(Round {
            round,
            rumor_bytes: rumor_bytes(&sim) - rumor_before,
            total_bytes: sim.metrics.total_bytes - total_before,
            rounds_to_converge: latency.div_ceil(interval),
        });
    }

    let snap = sim.snapshot();
    Run {
        label: label.to_string(),
        rumor_bytes_total: rounds.iter().map(|r| r.rumor_bytes).sum(),
        total_bytes: sim.metrics.total_bytes,
        deltas_sent: snap.counter(names::GOSSIP_DELTA_SENT),
        deltas_applied: snap.counter(names::GOSSIP_DELTA_APPLIED),
        delta_bytes_saved: snap.counter(names::GOSSIP_DELTA_BYTES_SAVED),
        rounds,
    }
}

/// Receiver-side per-hop CPU on real filters: full re-decompression of
/// a 20k-key filter vs toggling a 1000-key diff into the mirror.
#[derive(Serialize)]
struct CpuMicro {
    full_decompress_us: f64,
    delta_apply_us: f64,
    speedup: f64,
}

fn cpu_micro(iters: u32) -> CpuMicro {
    let mut old = BloomFilter::with_paper_defaults();
    for i in 0..20_000 {
        old.insert(&format!("term-{i}"));
    }
    let mut new = old.clone();
    for i in 20_000..21_000 {
        new.insert(&format!("term-{i}"));
    }
    let full = CompressedBloom::compress(&new);
    let diff = BloomDiff::between(&old, &new);

    let t = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(full.decompress().unwrap());
    }
    let full_us = t.elapsed().as_secs_f64() * 1e6 / f64::from(iters);

    // XOR diffs are self-inverting, so applying the same diff
    // repeatedly keeps the mirror valid while timing the hot path.
    let mut mirror = old.clone();
    let t = Instant::now();
    for _ in 0..iters {
        assert!(diff.apply_in_place(std::hint::black_box(&mut mirror)));
    }
    let delta_us = t.elapsed().as_secs_f64() * 1e6 / f64::from(iters);

    CpuMicro {
        full_decompress_us: full_us,
        delta_apply_us: delta_us,
        speedup: full_us / delta_us,
    }
}

#[derive(Serialize)]
struct Report {
    n: usize,
    churn_rounds: usize,
    delta: Run,
    full: Run,
    rumor_bytes_reduction: f64,
    cpu: CpuMicro,
}

fn main() {
    let (n, churn_rounds, iters) = match scale_from_args() {
        Scale::Quick => (50, 5, 20),
        Scale::Full => (500, 20, 200),
        Scale::Default => (200, 10, 100),
    };

    let delta = run("deltas on", true, n, churn_rounds);
    let full = run("deltas off", false, n, churn_rounds);
    let cpu = cpu_micro(iters);

    println!(
        "Delta gossip bandwidth: {} publishers x {churn_rounds} rounds of \
         1000-key updates through {n} DSL peers",
        (n / 20).max(1),
    );
    let rows: Vec<Vec<String>> = [&delta, &full]
        .iter()
        .map(|r| {
            let mean_rounds = r
                .rounds
                .iter()
                .map(|x| x.rounds_to_converge as f64)
                .sum::<f64>()
                / r.rounds.len() as f64;
            vec![
                r.label.clone(),
                format!(
                    "{:.1}",
                    r.rumor_bytes_total as f64 / 1e3 / churn_rounds as f64
                ),
                format!("{:.2}", r.total_bytes as f64 / 1e6),
                format!("{mean_rounds:.1}"),
                r.deltas_sent.to_string(),
                r.deltas_applied.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "configuration",
            "rumor KB/round",
            "total MB",
            "rounds to converge",
            "deltas sent",
            "deltas applied",
        ],
        &rows,
    );

    let reduction = full.rumor_bytes_total as f64 / delta.rumor_bytes_total.max(1) as f64;
    println!(
        "\nrumor bytes: {reduction:.1}x less with deltas; per-hop CPU: \
         decompress {:.0}us vs diff-apply {:.0}us ({:.1}x)",
        cpu.full_decompress_us, cpu.delta_apply_us, cpu.speedup,
    );

    // Acceptance: small-churn updates ship >=3x fewer rumor bytes and
    // converge in the same gossip rounds.
    assert!(
        reduction >= 3.0,
        "delta rumoring saved only {reduction:.2}x rumor bytes"
    );
    for (d, f) in delta.rounds.iter().zip(&full.rounds) {
        assert!(
            d.rounds_to_converge <= f.rounds_to_converge,
            "round {}: deltas converged slower ({} vs {} rounds)",
            d.round,
            d.rounds_to_converge,
            f.rounds_to_converge,
        );
    }
    assert!(delta.deltas_applied > 0, "delta run never applied a delta");

    write_json(
        "BENCH_gossip_bw",
        &Report {
            n,
            churn_rounds,
            rumor_bytes_reduction: reduction,
            delta,
            full,
            cpu,
        },
    );
}
