//! Ablation: Bloom filter size vs retrieval accuracy and wasted
//! contacts. Smaller filters gossip fewer bytes but their false
//! positives pull irrelevant peers into the candidate set and distort
//! IPF — the accuracy/storage trade §2 says peers can make
//! independently.

use planetp_bench::retrieval::{build_setup, eval_tfxipf};
use planetp_bench::{print_table, scale_from_args, write_json, Scale};
use planetp_bloom::{BloomFilter, BloomParams, CompressedBloom};
use planetp_corpus::{ap89_like_scaled, Collection, Partition};
use planetp_search::StoppingRule;
use serde::Serialize;

#[derive(Serialize)]
struct Run {
    filter_kb: usize,
    mean_fpr: f64,
    wire_bytes: usize,
    recall: f64,
    precision: f64,
    avg_contacted: f64,
}

fn main() {
    let scale = scale_from_args();
    let (spec, num_peers, k) = match scale {
        Scale::Quick => (ap89_like_scaled(40), 100, 20),
        _ => (ap89_like_scaled(8), 400, 20),
    };
    eprintln!("generating {}...", spec.name);
    let collection = Collection::generate(spec);

    let mut runs = Vec::new();
    for kb in [1usize, 4, 12, 50, 200] {
        let params = BloomParams {
            num_bits: kb * 1024 * 8,
            num_hashes: 2,
        };
        let setup = build_setup(
            collection.clone(),
            num_peers,
            Partition::paper(),
            params,
            0xAB3,
        );
        let p = eval_tfxipf(&setup, k, StoppingRule::Adaptive, 1);
        let mean_fpr = setup
            .peers
            .iter()
            .map(|pr| pr.bloom.estimated_fpr())
            .sum::<f64>()
            / setup.peers.len() as f64;
        // Wire size of the biggest peer's compressed filter.
        let max_wire = setup
            .peers
            .iter()
            .map(|pr| CompressedBloom::compress(&pr.bloom).wire_bytes())
            .max()
            .unwrap_or(0);
        let _ = BloomFilter::new(params);
        runs.push(Run {
            filter_kb: kb,
            mean_fpr,
            wire_bytes: max_wire,
            recall: p.recall,
            precision: p.precision,
            avg_contacted: p.avg_contacted,
        });
        eprintln!("{kb:4} KB filter: fpr {mean_fpr:.4} recall {:.3}", p.recall);
    }

    println!("Ablation: Bloom filter size vs search accuracy (k = {k}, {num_peers} peers)");
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                format!("{} KB", r.filter_kb),
                format!("{:.4}", r.mean_fpr),
                r.wire_bytes.to_string(),
                format!("{:.3}", r.recall),
                format!("{:.3}", r.precision),
                format!("{:.1}", r.avg_contacted),
            ]
        })
        .collect();
    print_table(
        &[
            "filter",
            "mean FPR",
            "max wire bytes",
            "recall",
            "precision",
            "contacted",
        ],
        &rows,
    );
    println!(
        "\nExpected: accuracy saturates once FPR is small; tiny filters cost \
         recall/precision and extra contacts while saving gossip bytes."
    );
    write_json("ablation_bf_size", &runs);
}
