//! Bloofi tree vs. flat directory scan at community scale.
//!
//! PlanetP's cold query path probes every peer's Bloom filter — O(N)
//! probes per uncached term. The `planetp-bloomtree` front end walks a
//! B-tree of union filters instead, pruning subtrees whose union
//! rejects the key. This bench sweeps community sizes N and measures
//! both layers:
//!
//! - **raw index**: `probe_row` over all N filters vs.
//!   `BloomTree::candidates`, counting union-filter probes
//!   (`nodes_visited`) against the flat scan's N — the acceptance bar
//!   is `nodes_visited < N` at the top of the sweep;
//! - **integrated cache**: `QueryCache::plan` cold and warm, flat vs.
//!   tree-fronted, on identical views — the end-to-end cost a searcher
//!   actually pays.
//!
//! The synthetic community mirrors the paper's workload shape: each
//! peer announces [`TERMS_PER_PEER`] terms from a shared vocabulary
//! sized so a typical term has ~8 publishers (selective queries, where
//! pruning matters; a term every peer holds defeats any summary index).
//!
//! Emits `BENCH_bloomtree.json` when `PLANETP_JSON_DIR` is set.

use planetp_bench::{print_table, scale_from_args, write_json, Scale};
use planetp_bloom::{probe_row, BloomFilter, BloomParams, HashedKey};
use planetp_bloomtree::{BloomTree, PeerEntry, TreeConfig, TreeMetrics};
use planetp_obs::{names, Registry};
use planetp_search::{PeerFilterRef, QueryCache};
use serde::Serialize;
use std::time::Instant;

/// Vocabulary size per peer (the paper's filters summarize a peer's
/// whole term set; 64 keeps fill realistic for the bit budget below).
const TERMS_PER_PEER: usize = 64;
/// One fixed bit space for the whole community: 25,600 bits / 2 hashes
/// holds 64 keys at ~0.4% FPR.
const PARAMS: BloomParams = BloomParams {
    num_bits: 25_600,
    num_hashes: 2,
};
/// Tree fan-out: 16 children per interior node.
const FANOUT: usize = 16;
/// Distinct single-term lookups per measurement pass.
const LOOKUPS: usize = 64;

#[derive(Serialize)]
struct Row {
    peers: usize,
    /// Flat scan cost: one filter probe per tracked peer per lookup.
    flat_probes: usize,
    /// Union-filter probes per tree lookup (mean over the pass).
    nodes_visited_mean: f64,
    /// Peers surviving pruning per lookup (mean).
    candidates_mean: f64,
    /// Flat probes avoided per lookup (mean).
    probes_saved_mean: f64,
    height: usize,
    bulk_build_ms: f64,
    /// Raw index lookup cost, microseconds per key.
    flat_scan_us: f64,
    tree_scan_us: f64,
    /// `QueryCache::plan` medians (4-term query), microseconds.
    cache_flat_cold_us: f64,
    cache_flat_warm_us: f64,
    cache_tree_cold_us: f64,
    cache_tree_warm_us: f64,
    /// The acceptance bar: the tree probed strictly fewer filters than
    /// the flat scan.
    pruning_wins: bool,
}

#[derive(Serialize)]
struct Report {
    terms_per_peer: usize,
    num_bits: usize,
    num_hashes: u32,
    fanout: usize,
    lookups_per_pass: usize,
    rows: Vec<Row>,
}

/// Peer `i`'s term set: `TERMS_PER_PEER` words strided through a
/// vocabulary of `8 * n / TERMS_PER_PEER` words per peer-slot, so each
/// word has ~8 publishers regardless of N.
fn community(n: usize) -> Vec<BloomFilter> {
    let vocab = (n * TERMS_PER_PEER) / 8;
    (0..n)
        .map(|i| {
            let mut f = BloomFilter::new(PARAMS);
            for j in 0..TERMS_PER_PEER {
                f.insert(&word((i * TERMS_PER_PEER + j * 13 + 7) % vocab));
            }
            f
        })
        .collect()
}

fn word(w: usize) -> String {
    format!("w{w}")
}

/// The lookup keys: spread across the vocabulary so most are held by a
/// handful of peers, plus a guaranteed miss.
fn lookup_keys(n: usize) -> Vec<String> {
    let vocab = (n * TERMS_PER_PEER) / 8;
    let mut keys: Vec<String> = (0..LOOKUPS - 1)
        .map(|q| word((q * 97 + 3) % vocab))
        .collect();
    keys.push("nobody-has-this-term".to_string());
    keys
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    samples[samples.len() / 2]
}

/// Median microseconds for `plan` on a fresh cache (cold: every term
/// probes the directory) and a primed one (warm: pure cache read).
fn cache_micro(
    make: impl Fn() -> QueryCache,
    view: &[PeerFilterRef<'_>],
    reps: usize,
) -> (f64, f64) {
    let q: Vec<String> = (0..4).map(|i| word(i * 31 + 3)).collect();
    let mut cold = Vec::with_capacity(reps);
    for _ in 0..reps {
        let mut cache = make();
        let t = Instant::now();
        std::hint::black_box(cache.plan(&q, view));
        cold.push(t.elapsed().as_secs_f64() * 1e6);
    }
    let mut cache = make();
    cache.plan(&q, view);
    let mut warm = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(cache.plan(&q, view));
        warm.push(t.elapsed().as_secs_f64() * 1e6);
    }
    (median(&mut cold), median(&mut warm))
}

fn bench_community(n: usize, reps: usize) -> Row {
    let filters = community(n);
    let keys: Vec<HashedKey> = lookup_keys(n).iter().map(|k| HashedKey::new(k)).collect();

    // Raw flat scan: N probes per key, by construction.
    let t = Instant::now();
    let mut flat_hits = 0usize;
    for key in &keys {
        let (_, count) = probe_row(key, &filters);
        flat_hits += count;
    }
    let flat_scan_us = t.elapsed().as_secs_f64() * 1e6 / keys.len() as f64;

    // Raw tree: bulk-build once (the shape a membership rebuild takes),
    // then the same lookups, with the pruning counters recording.
    let entries: Vec<PeerEntry<'_>> = filters
        .iter()
        .enumerate()
        .map(|(i, f)| PeerEntry {
            id: i as u64,
            version: (1, 1),
            filter: f,
        })
        .collect();
    let registry = Registry::new();
    let t = Instant::now();
    let tree = BloomTree::bulk_build(TreeConfig::new(FANOUT, PARAMS), &entries)
        .with_metrics(TreeMetrics::in_registry(&registry));
    let bulk_build_ms = t.elapsed().as_secs_f64() * 1000.0;

    let t = Instant::now();
    let mut tree_hits = 0usize;
    for key in &keys {
        tree_hits += tree.candidates(key).count();
    }
    let tree_scan_us = t.elapsed().as_secs_f64() * 1e6 / keys.len() as f64;
    assert!(
        tree_hits >= flat_hits,
        "tree lost a flat hit: {tree_hits} < {flat_hits}"
    );

    let snap = registry.snapshot();
    let lookups = snap.counter(names::BLOOMTREE_LOOKUPS) as f64;
    let nodes_visited_mean = snap.counter(names::BLOOMTREE_NODES_VISITED) as f64 / lookups;
    let candidates_mean = snap.counter(names::BLOOMTREE_CANDIDATES) as f64 / lookups;
    let probes_saved_mean = snap.counter(names::BLOOMTREE_PROBES_SAVED) as f64 / lookups;

    // Integrated: the query cache's cold path with and without the
    // tree front end, over the same borrowed view.
    let view: Vec<PeerFilterRef<'_>> = filters
        .iter()
        .enumerate()
        .map(|(i, f)| PeerFilterRef {
            id: i as u64,
            version: (1, 0),
            filter: f,
        })
        .collect();
    let (cache_flat_cold_us, cache_flat_warm_us) = cache_micro(QueryCache::new, &view, reps);
    let (cache_tree_cold_us, cache_tree_warm_us) = cache_micro(
        || QueryCache::new().with_tree(TreeConfig::new(FANOUT, PARAMS), TreeMetrics::detached()),
        &view,
        reps,
    );

    Row {
        peers: n,
        flat_probes: n,
        nodes_visited_mean,
        candidates_mean,
        probes_saved_mean,
        height: tree.height(),
        bulk_build_ms,
        flat_scan_us,
        tree_scan_us,
        cache_flat_cold_us,
        cache_flat_warm_us,
        cache_tree_cold_us,
        cache_tree_warm_us,
        pruning_wins: nodes_visited_mean < n as f64,
    }
}

fn main() {
    let scale = scale_from_args();
    let (sizes, reps): (&[usize], usize) = match scale {
        Scale::Quick => (&[100, 1_000], 10),
        Scale::Full | Scale::Default => (&[100, 1_000, 10_000], 20),
    };

    let rows: Vec<Row> = sizes.iter().map(|&n| bench_community(n, reps)).collect();

    println!(
        "Bloofi tree vs flat scan: {TERMS_PER_PEER} terms/peer, \
         {} bits / {} hashes, fan-out {FANOUT}, {LOOKUPS} lookups/pass:",
        PARAMS.num_bits, PARAMS.num_hashes
    );
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.peers.to_string(),
                r.flat_probes.to_string(),
                format!("{:.0}", r.nodes_visited_mean),
                format!("{:.1}", r.candidates_mean),
                r.height.to_string(),
                format!("{:.1}", r.flat_scan_us),
                format!("{:.1}", r.tree_scan_us),
                format!("{:.0}", r.cache_flat_cold_us),
                format!("{:.0}", r.cache_tree_cold_us),
                format!("{:.1}", r.cache_tree_warm_us),
            ]
        })
        .collect();
    print_table(
        &[
            "peers",
            "flat probes",
            "tree visits",
            "candidates",
            "height",
            "flat(us)",
            "tree(us)",
            "plan cold flat(us)",
            "plan cold tree(us)",
            "plan warm(us)",
        ],
        &table,
    );
    for r in &rows {
        println!(
            "N={}: tree probes {:.0} union filters vs {} flat ({}), saving \
             {:.0} per-peer probes per lookup",
            r.peers,
            r.nodes_visited_mean,
            r.flat_probes,
            if r.pruning_wins {
                "pruning wins"
            } else {
                "pruning LOSES"
            },
            r.probes_saved_mean,
        );
    }

    write_json(
        "BENCH_bloomtree",
        &Report {
            terms_per_peer: TERMS_PER_PEER,
            num_bits: PARAMS.num_bits,
            num_hashes: PARAMS.num_hashes,
            fanout: FANOUT,
            lookups_per_pass: LOOKUPS,
            rows,
        },
    );
}
