//! Shared retrieval-experiment machinery for the Fig 6 and ablation
//! harnesses: build a peer community from a synthetic collection,
//! evaluate TFxIDF and TFxIPF, and report recall/precision/contacts.

use planetp_bloom::BloomParams;
use planetp_corpus::{partition_docs, Collection, Partition};
use planetp_index::InvertedIndex;
use planetp_search::{
    average_recall_precision, recall_precision, CentralizedIndex, DistributedSearch, DocRef,
    IndexedPeer, RecallPrecision, SelectionConfig, StoppingRule,
};
use serde::Serialize;
use std::collections::HashSet;

/// A collection distributed over a community of peers.
pub struct RetrievalSetup {
    /// Per-peer stores.
    pub peers: Vec<IndexedPeer>,
    /// Global doc id -> (peer, local id).
    pub refs: Vec<DocRef>,
    /// The global index (the TFxIDF oracle).
    pub central: CentralizedIndex,
    /// The source collection (queries + judgments).
    pub collection: Collection,
}

/// Distribute `collection` over `num_peers` peers.
pub fn build_setup(
    collection: Collection,
    num_peers: usize,
    partition: Partition,
    bloom_params: BloomParams,
    seed: u64,
) -> RetrievalSetup {
    let assignment = partition_docs(collection.docs.len(), num_peers, partition, seed);
    let mut indexes: Vec<InvertedIndex> = (0..num_peers).map(|_| InvertedIndex::new()).collect();
    let mut refs = Vec::with_capacity(collection.docs.len());
    let mut next_local = vec![0u64; num_peers];
    for (doc_id, doc) in collection.docs.iter().enumerate() {
        let peer = assignment[doc_id];
        let local = next_local[peer];
        next_local[peer] += 1;
        indexes[peer].add_document(local, &doc.terms);
        refs.push(DocRef { peer, doc: local });
    }
    let mut central = CentralizedIndex::default();
    for (pno, idx) in indexes.iter().enumerate() {
        central.add_peer(pno, idx);
    }
    let peers = indexes
        .into_iter()
        .map(|idx| IndexedPeer::new(idx, bloom_params))
        .collect();
    RetrievalSetup {
        peers,
        refs,
        central,
        collection,
    }
}

/// Measured quality of one ranking strategy at one k.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct QualityPoint {
    /// Result-list size.
    pub k: usize,
    /// Average recall over queries.
    pub recall: f64,
    /// Average precision over queries.
    pub precision: f64,
    /// Mean peers contacted per query.
    pub avg_contacted: f64,
}

/// Evaluate the centralized TFxIDF oracle at `k`. `avg_contacted` is
/// the paper's "Best": the minimum peers needed to fetch the top-k.
pub fn eval_tfidf(setup: &RetrievalSetup, k: usize) -> QualityPoint {
    let mut scores: Vec<RecallPrecision> = Vec::new();
    let mut contacted = 0usize;
    let mut queries = 0usize;
    for q in &setup.collection.queries {
        if q.relevant.is_empty() {
            continue;
        }
        queries += 1;
        let relevant: HashSet<DocRef> = q.relevant.iter().map(|&d| setup.refs[d]).collect();
        let top = setup.central.top_k(&q.terms, k);
        contacted += CentralizedIndex::peers_required(&top);
        let docs: Vec<DocRef> = top.iter().map(|s| s.doc).collect();
        scores.push(recall_precision(&docs, &relevant));
    }
    let avg = average_recall_precision(&scores);
    QualityPoint {
        k,
        recall: avg.recall,
        precision: avg.precision,
        avg_contacted: contacted as f64 / queries.max(1) as f64,
    }
}

/// Evaluate distributed TFxIPF at `k` under a stopping rule.
pub fn eval_tfxipf(
    setup: &RetrievalSetup,
    k: usize,
    stopping: StoppingRule,
    group_size: usize,
) -> QualityPoint {
    let search = DistributedSearch::new(&setup.peers);
    let mut scores: Vec<RecallPrecision> = Vec::new();
    let mut contacted = 0usize;
    let mut queries = 0usize;
    for q in &setup.collection.queries {
        if q.relevant.is_empty() {
            continue;
        }
        queries += 1;
        let relevant: HashSet<DocRef> = q.relevant.iter().map(|&d| setup.refs[d]).collect();
        let out = search.search(
            &q.terms,
            SelectionConfig {
                k,
                stopping,
                group_size,
            },
        );
        contacted += out.peers_contacted;
        let docs: Vec<DocRef> = out.results.iter().map(|s| s.doc).collect();
        scores.push(recall_precision(&docs, &relevant));
    }
    let avg = average_recall_precision(&scores);
    QualityPoint {
        k,
        recall: avg.recall,
        precision: avg.precision,
        avg_contacted: contacted as f64 / queries.max(1) as f64,
    }
}
