//! The community-wide brokerage service.
//!
//! Routes publications and lookups over the ring and implements the
//! membership dynamics §4 alludes to: a joining broker takes over the
//! slice of its successor's range below its position; a *graceful*
//! leave hands everything to the successor; an *abrupt* leave loses the
//! broker's filings ("no guarantee as to the safety of information
//! published to it").

use crate::broker::BrokerNode;
use crate::ring::ConsistentRing;
use crate::snippet::Snippet;
use crate::{BrokerId, TimeMs};
use std::collections::HashMap;
use std::sync::Arc;

/// The brokerage: a ring of brokers and their stores.
///
/// In a live deployment each `BrokerNode` runs on its own peer; this
/// struct is the coordination logic, used directly by the simulator and
/// wrapped by the live runtime.
#[derive(Debug, Clone, Default)]
pub struct BrokerageService {
    ring: ConsistentRing,
    stores: HashMap<BrokerId, BrokerNode>,
}

impl BrokerageService {
    /// Empty service.
    pub fn new() -> Self {
        Self::default()
    }

    /// Access the ring (read-only).
    pub fn ring(&self) -> &ConsistentRing {
        &self.ring
    }

    /// Number of active brokers.
    pub fn num_brokers(&self) -> usize {
        self.ring.len()
    }

    /// A broker joins at `position`. Filings in its new range move from
    /// its successor. Returns `false` if the position was taken.
    pub fn join(&mut self, id: BrokerId, position: u64) -> bool {
        if !self.ring.insert(position, id) {
            return false;
        }
        self.stores.entry(id).or_default();
        // Take over the half-open range (predecessor, position] from the
        // successor.
        if let Some(successor) = self.ring.next_after(id) {
            let pred_pos = self
                .ring
                .iter()
                .filter(|&(p, m)| m != id && p != position)
                .map(|(p, _)| p)
                .filter(|&p| p < position)
                .max()
                .or_else(|| self.ring.iter().map(|(p, _)| p).max())
                .unwrap_or(position);
            let moved = self
                .stores
                .get_mut(&successor)
                .expect("successor has a store")
                .split_range(pred_pos, position);
            let store = self.stores.get_mut(&id).expect("inserted above");
            for (key, s) in moved {
                store.publish(&key, s);
            }
        }
        true
    }

    /// Graceful leave: hand all filings to the successor.
    pub fn leave_graceful(&mut self, id: BrokerId) {
        let successor = self.ring.next_after(id);
        self.ring.remove(id);
        let Some(mut store) = self.stores.remove(&id) else {
            return;
        };
        if let Some(succ) = successor {
            let succ_store = self.stores.get_mut(&succ).expect("successor has a store");
            for (key, s) in store.drain_all() {
                succ_store.publish(&key, s);
            }
        }
    }

    /// Abrupt leave: the broker's filings are lost.
    pub fn leave_abrupt(&mut self, id: BrokerId) {
        self.ring.remove(id);
        self.stores.remove(&id);
    }

    /// Publish a snippet: file it under each of its keys at the
    /// responsible brokers. Returns how many filings were placed (0 if
    /// there are no brokers).
    pub fn publish(&mut self, snippet: Snippet) -> usize {
        let snippet = Arc::new(snippet);
        let mut placed = 0;
        for key in snippet.keys.clone() {
            if let Some(b) = self.ring.broker_for(&key) {
                self.stores
                    .get_mut(&b)
                    .expect("ring members have stores")
                    .publish(&key, Arc::clone(&snippet));
                placed += 1;
            }
        }
        placed
    }

    /// Look up unexpired snippets filed under `key`.
    pub fn lookup(&self, key: &str, now: TimeMs) -> Vec<Arc<Snippet>> {
        match self.ring.broker_for(key) {
            Some(b) => self
                .stores
                .get(&b)
                .map(|s| s.lookup(key, now))
                .unwrap_or_default(),
            None => Vec::new(),
        }
    }

    /// Sweep expired snippets on all brokers; returns total discarded.
    pub fn sweep(&mut self, now: TimeMs) -> usize {
        self.stores.values_mut().map(|s| s.sweep(now)).sum()
    }

    /// Total filings across all brokers.
    pub fn total_filings(&self) -> usize {
        self.stores.values().map(BrokerNode::filings).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snippet(id: u64, keys: &[&str], discard_at: TimeMs) -> Snippet {
        Snippet {
            id,
            publisher: 1,
            xml: format!("<s id='{id}'/>"),
            keys: keys.iter().map(|k| k.to_string()).collect(),
            discard_at,
        }
    }

    fn ring_of(n: u64) -> BrokerageService {
        let mut svc = BrokerageService::new();
        for i in 0..n {
            assert!(svc.join(i as BrokerId, i * (crate::ring::RING_MAX / n)));
        }
        svc
    }

    #[test]
    fn publish_and_lookup_roundtrip() {
        let mut svc = ring_of(4);
        svc.publish(snippet(1, &["gossip", "bloom"], 10_000));
        assert_eq!(svc.lookup("gossip", 0).len(), 1);
        assert_eq!(svc.lookup("bloom", 0).len(), 1);
        assert!(svc.lookup("absent", 0).is_empty());
        assert_eq!(svc.total_filings(), 2);
    }

    #[test]
    fn expiry_hides_snippets() {
        let mut svc = ring_of(4);
        svc.publish(snippet(1, &["k"], 600_000)); // 10 min, as PFS uses
        assert_eq!(svc.lookup("k", 599_999).len(), 1);
        assert!(svc.lookup("k", 600_000).is_empty());
        assert_eq!(svc.sweep(600_000), 1);
        assert_eq!(svc.total_filings(), 0);
    }

    #[test]
    fn join_takes_over_range_without_losing_data() {
        let mut svc = ring_of(3);
        for i in 0..200 {
            svc.publish(snippet(i, &[&format!("key-{i}")], u64::MAX));
        }
        assert_eq!(svc.total_filings(), 200);
        // A new broker joins between existing ones.
        assert!(svc.join(99, crate::ring::RING_MAX / 2 + 12345));
        assert_eq!(svc.total_filings(), 200, "join must not lose filings");
        for i in 0..200 {
            assert_eq!(
                svc.lookup(&format!("key-{i}"), 0).len(),
                1,
                "key-{i} lost after join"
            );
        }
    }

    #[test]
    fn graceful_leave_preserves_data() {
        let mut svc = ring_of(4);
        for i in 0..100 {
            svc.publish(snippet(i, &[&format!("key-{i}")], u64::MAX));
        }
        svc.leave_graceful(2);
        assert_eq!(svc.total_filings(), 100);
        for i in 0..100 {
            assert_eq!(svc.lookup(&format!("key-{i}"), 0).len(), 1);
        }
    }

    #[test]
    fn abrupt_leave_loses_that_brokers_data() {
        let mut svc = ring_of(4);
        for i in 0..100 {
            svc.publish(snippet(i, &[&format!("key-{i}")], u64::MAX));
        }
        let before = svc.total_filings();
        svc.leave_abrupt(1);
        let after = svc.total_filings();
        assert!(after < before, "abrupt leave should lose filings");
        // Remaining keys still resolve via the ring.
        let resolvable = (0..100)
            .filter(|i| !svc.lookup(&format!("key-{i}"), 0).is_empty())
            .count();
        assert_eq!(resolvable, after);
    }

    #[test]
    fn no_brokers_no_placement() {
        let mut svc = BrokerageService::new();
        assert_eq!(svc.publish(snippet(1, &["k"], 100)), 0);
        assert!(svc.lookup("k", 0).is_empty());
    }

    #[test]
    fn duplicate_position_join_rejected() {
        let mut svc = ring_of(2);
        assert!(!svc.join(7, 0));
    }
}
