//! The consistent-hashing ring.
//!
//! "Each active member chooses a unique broker ID from a predetermined
//! range (0 to maxID). Then, all members arrange themselves into a ring
//! using their IDs. To map a key to a broker, we compute the hash H of
//! the key. Then, we send the snippet and key to the broker whose ID
//! makes it the least successor to H mod maxID on the ring." (§4)

use crate::BrokerId;
use serde::{Deserialize, Serialize};

/// The predetermined id range: positions live in `[0, RING_MAX)`.
pub const RING_MAX: u64 = 1 << 32;

/// Hash a key to its ring position (`H mod maxID`).
pub fn key_position(key: &str) -> u64 {
    // FNV-1a then SplitMix finalizer, as elsewhere in the codebase.
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in key.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (h ^ (h >> 31)) % RING_MAX
}

/// A ring of brokers ordered by their chosen positions.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConsistentRing {
    /// Sorted by position; positions are unique.
    members: Vec<(u64, BrokerId)>,
}

impl ConsistentRing {
    /// Empty ring.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of brokers.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the ring has no brokers.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Add a broker at `position`. Returns `false` (and changes
    /// nothing) if the position is already taken.
    pub fn insert(&mut self, position: u64, id: BrokerId) -> bool {
        assert!(position < RING_MAX, "position outside the id range");
        match self.members.binary_search_by_key(&position, |&(p, _)| p) {
            Ok(_) => false,
            Err(i) => {
                self.members.insert(i, (position, id));
                true
            }
        }
    }

    /// Remove a broker by id. Returns its position if present.
    pub fn remove(&mut self, id: BrokerId) -> Option<u64> {
        let i = self.members.iter().position(|&(_, m)| m == id)?;
        Some(self.members.remove(i).0)
    }

    /// The broker responsible for `position`: the least successor on
    /// the ring (wrapping).
    pub fn successor_of(&self, position: u64) -> Option<BrokerId> {
        if self.members.is_empty() {
            return None;
        }
        let i = self
            .members
            .partition_point(|&(p, _)| p < position % RING_MAX);
        let i = if i == self.members.len() { 0 } else { i };
        Some(self.members[i].1)
    }

    /// The broker responsible for a key.
    pub fn broker_for(&self, key: &str) -> Option<BrokerId> {
        self.successor_of(key_position(key))
    }

    /// The broker's position, if it is a member.
    pub fn position_of(&self, id: BrokerId) -> Option<u64> {
        self.members
            .iter()
            .find(|&&(_, m)| m == id)
            .map(|&(p, _)| p)
    }

    /// Iterate `(position, id)` pairs in ring order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, BrokerId)> + '_ {
        self.members.iter().copied()
    }

    /// The broker that follows `id` on the ring (its successor), if the
    /// ring has more than one member.
    pub fn next_after(&self, id: BrokerId) -> Option<BrokerId> {
        if self.members.len() < 2 {
            return None;
        }
        let i = self.members.iter().position(|&(_, m)| m == id)?;
        Some(self.members[(i + 1) % self.members.len()].1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn successor_wraps_around() {
        let mut r = ConsistentRing::new();
        r.insert(100, 1);
        r.insert(1000, 2);
        assert_eq!(r.successor_of(50), Some(1));
        assert_eq!(r.successor_of(100), Some(1), "own position maps to self");
        assert_eq!(r.successor_of(101), Some(2));
        assert_eq!(r.successor_of(5000), Some(1), "wraps to the first");
    }

    #[test]
    fn duplicate_positions_rejected() {
        let mut r = ConsistentRing::new();
        assert!(r.insert(7, 1));
        assert!(!r.insert(7, 2));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn remove_restores_routing_to_successor() {
        let mut r = ConsistentRing::new();
        r.insert(100, 1);
        r.insert(200, 2);
        r.insert(300, 3);
        assert_eq!(r.successor_of(150), Some(2));
        assert_eq!(r.remove(2), Some(200));
        assert_eq!(r.successor_of(150), Some(3));
        assert_eq!(r.remove(2), None, "double remove");
    }

    #[test]
    fn empty_ring_routes_nowhere() {
        let r = ConsistentRing::new();
        assert_eq!(r.broker_for("key"), None);
        assert_eq!(r.successor_of(0), None);
    }

    #[test]
    fn keys_distribute_across_brokers() {
        let mut r = ConsistentRing::new();
        // Evenly spaced brokers.
        for i in 0..8u64 {
            r.insert(i * (RING_MAX / 8), i as BrokerId);
        }
        let mut counts = [0u32; 8];
        for k in 0..8000 {
            let b = r.broker_for(&format!("key-{k}")).unwrap();
            counts[b as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (500..=1600).contains(&c),
                "broker {i} got {c} of 8000 keys: {counts:?}"
            );
        }
    }

    #[test]
    fn key_position_stable_and_in_range() {
        assert_eq!(key_position("gossip"), key_position("gossip"));
        assert_ne!(key_position("gossip"), key_position("bloom"));
        for k in ["a", "b", "longer-key-string"] {
            assert!(key_position(k) < RING_MAX);
        }
    }

    #[test]
    fn next_after_cycles_the_ring() {
        let mut r = ConsistentRing::new();
        r.insert(10, 1);
        r.insert(20, 2);
        r.insert(30, 3);
        assert_eq!(r.next_after(1), Some(2));
        assert_eq!(r.next_after(3), Some(1), "wraps");
        r.remove(2);
        r.remove(3);
        assert_eq!(r.next_after(1), None, "singleton has no successor");
    }
}
