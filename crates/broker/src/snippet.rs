//! Published snippets.

use crate::TimeMs;
use serde::{Deserialize, Serialize};

/// An XML snippet published to the brokerage: content, the keys it is
/// filed under, and when brokers may discard it (§4: "The snippet is
/// discarded after its discard time expires").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Snippet {
    /// Publisher-assigned identifier, unique per publisher.
    pub id: u64,
    /// The publishing peer.
    pub publisher: u32,
    /// The XML content (e.g. PFS publishes a URL + file pointer).
    pub xml: String,
    /// Keys (terms) the snippet is findable under.
    pub keys: Vec<String>,
    /// Absolute expiry time.
    pub discard_at: TimeMs,
}

impl Snippet {
    /// Has the snippet expired at `now`?
    pub fn expired(&self, now: TimeMs) -> bool {
        now >= self.discard_at
    }

    /// Approximate wire/storage size in bytes.
    pub fn size_bytes(&self) -> usize {
        16 + self.xml.len() + self.keys.iter().map(|k| k.len() + 2).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snip(discard_at: TimeMs) -> Snippet {
        Snippet {
            id: 1,
            publisher: 9,
            xml: "<file href='http://p9/x.pdf'/>".into(),
            keys: vec!["gossip".into()],
            discard_at,
        }
    }

    #[test]
    fn expiry_boundary() {
        let s = snip(1000);
        assert!(!s.expired(999));
        assert!(s.expired(1000));
        assert!(s.expired(2000));
    }

    #[test]
    fn size_accounts_for_content_and_keys() {
        let s = snip(0);
        assert!(s.size_bytes() > s.xml.len());
    }
}
