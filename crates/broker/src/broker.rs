//! A single broker's storage: the slice of the key space it owns.

use crate::ring::key_position;
use crate::snippet::Snippet;
use crate::TimeMs;
use std::collections::HashMap;
use std::sync::Arc;

/// One broker's key-partition store. Snippets are shared (`Arc`) since
/// one snippet is filed under each of its keys.
#[derive(Debug, Clone, Default)]
pub struct BrokerNode {
    by_key: HashMap<String, Vec<Arc<Snippet>>>,
}

impl BrokerNode {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// File a snippet under one of its keys.
    pub fn publish(&mut self, key: &str, snippet: Arc<Snippet>) {
        let entry = self.by_key.entry(key.to_string()).or_default();
        // Republication replaces the previous version from the same
        // publisher with the same id.
        entry.retain(|s| !(s.publisher == snippet.publisher && s.id == snippet.id));
        entry.push(snippet);
    }

    /// Unexpired snippets filed under `key` at time `now`.
    pub fn lookup(&self, key: &str, now: TimeMs) -> Vec<Arc<Snippet>> {
        self.by_key
            .get(key)
            .map(|v| v.iter().filter(|s| !s.expired(now)).cloned().collect())
            .unwrap_or_default()
    }

    /// Drop expired snippets; returns how many were discarded.
    pub fn sweep(&mut self, now: TimeMs) -> usize {
        let mut dropped = 0;
        self.by_key.retain(|_, v| {
            let before = v.len();
            v.retain(|s| !s.expired(now));
            dropped += before - v.len();
            !v.is_empty()
        });
        dropped
    }

    /// Number of (key, snippet) filings stored.
    pub fn filings(&self) -> usize {
        self.by_key.values().map(Vec::len).sum()
    }

    /// Extract the filings whose key positions fall in the half-open
    /// ring interval `(from, to]` (wrapping) — the handoff when a new
    /// broker joins and takes over part of this broker's range.
    pub fn split_range(&mut self, from: u64, to: u64) -> Vec<(String, Arc<Snippet>)> {
        let in_range = |pos: u64| {
            if from < to {
                pos > from && pos <= to
            } else {
                // Wrapped interval.
                pos > from || pos <= to
            }
        };
        let mut moved = Vec::new();
        self.by_key.retain(|key, v| {
            if in_range(key_position(key)) {
                for s in v.drain(..) {
                    moved.push((key.clone(), s));
                }
                false
            } else {
                true
            }
        });
        moved
    }

    /// Drain everything (graceful leave: hand all filings to the
    /// successor).
    pub fn drain_all(&mut self) -> Vec<(String, Arc<Snippet>)> {
        let mut out = Vec::new();
        for (k, v) in self.by_key.drain() {
            for s in v {
                out.push((k.clone(), s));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snip(id: u64, publisher: u32, key: &str, discard_at: TimeMs) -> Arc<Snippet> {
        Arc::new(Snippet {
            id,
            publisher,
            xml: format!("<x id='{id}'/>"),
            keys: vec![key.to_string()],
            discard_at,
        })
    }

    #[test]
    fn publish_then_lookup() {
        let mut b = BrokerNode::new();
        b.publish("gossip", snip(1, 0, "gossip", 1000));
        assert_eq!(b.lookup("gossip", 0).len(), 1);
        assert!(b.lookup("other", 0).is_empty());
    }

    #[test]
    fn lookup_hides_expired_and_sweep_removes_them() {
        let mut b = BrokerNode::new();
        b.publish("k", snip(1, 0, "k", 100));
        b.publish("k", snip(2, 0, "k", 10_000));
        assert_eq!(b.lookup("k", 500).len(), 1);
        assert_eq!(b.filings(), 2);
        assert_eq!(b.sweep(500), 1);
        assert_eq!(b.filings(), 1);
    }

    #[test]
    fn republication_replaces() {
        let mut b = BrokerNode::new();
        b.publish("k", snip(1, 7, "k", 100));
        b.publish("k", snip(1, 7, "k", 9_000));
        let found = b.lookup("k", 0);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].discard_at, 9_000);
        // Same id from a different publisher is a different snippet.
        b.publish("k", snip(1, 8, "k", 100));
        assert_eq!(b.lookup("k", 0).len(), 2);
    }

    #[test]
    fn split_range_moves_only_matching_keys() {
        let mut b = BrokerNode::new();
        for k in ["alpha", "beta", "gamma", "delta", "epsilon"] {
            b.publish(k, snip(1, 0, k, u64::MAX));
        }
        let total = b.filings();
        // Pick a range that certainly contains at least one key.
        let pos = key_position("gamma");
        let moved = b.split_range(pos.wrapping_sub(1), pos);
        assert!(moved.iter().any(|(k, _)| k == "gamma"));
        assert_eq!(b.filings() + moved.len(), total);
        assert!(b.lookup("gamma", 0).is_empty());
    }

    #[test]
    fn drain_all_empties() {
        let mut b = BrokerNode::new();
        b.publish("a", snip(1, 0, "a", u64::MAX));
        b.publish("b", snip(2, 0, "b", u64::MAX));
        let all = b.drain_all();
        assert_eq!(all.len(), 2);
        assert_eq!(b.filings(), 0);
    }
}
