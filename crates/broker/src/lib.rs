//! PlanetP's information brokerage service (§4 of the paper).
//!
//! Gossiping spreads news in minutes; the brokerage makes *brand-new*
//! content findable in seconds. "Information is published to the
//! brokerage service as an XML snippet with a set of associated keys
//! (terms) and a discard time. The network of brokers use consistent
//! hashing to partition the key space among them."
//!
//! The service is explicitly an *optimization*, not a dependability
//! layer: "this service makes no guarantee as to the safety of
//! information published to it. If a member leaves abruptly without
//! passing on its portion of the published data, that data will be
//! lost."
//!
//! - [`ring`]: the consistent-hashing ring — each broker chooses an id
//!   in `[0, max_id)`, a key maps to the *least successor* of its hash.
//! - [`snippet`]: published XML snippets with keys and discard times.
//! - [`broker`]: a single broker's key-partition storage with expiry.
//! - [`service`]: the community-wide service — routing, joins (key
//!   handoff from the successor), graceful and abrupt leaves.

pub mod broker;
pub mod ring;
pub mod service;
pub mod snippet;

pub use broker::BrokerNode;
pub use ring::{key_position, ConsistentRing};
pub use service::BrokerageService;
pub use snippet::Snippet;

/// Broker identifier (a peer acting as broker).
pub type BrokerId = u32;

/// Milliseconds since an arbitrary epoch (same convention as the gossip
/// layer).
pub type TimeMs = u64;
