//! Property-based tests for the brokerage: routing invariants of the
//! consistent-hashing ring under arbitrary joins and leaves, and
//! no-loss guarantees for graceful membership changes.

use planetp_broker::{key_position, BrokerageService, ConsistentRing, Snippet};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum RingOp {
    Join(u32),
    LeaveGraceful(u8),
    LeaveAbrupt(u8),
    Publish(u16),
}

fn op() -> impl Strategy<Value = RingOp> {
    prop_oneof![
        2 => any::<u32>().prop_map(RingOp::Join),
        1 => any::<u8>().prop_map(RingOp::LeaveGraceful),
        1 => any::<u8>().prop_map(RingOp::LeaveAbrupt),
        3 => any::<u16>().prop_map(RingOp::Publish),
    ]
}

proptest! {
    /// Ring routing is a function: every key maps to exactly one live
    /// broker, and removing an unrelated broker never re-routes a key
    /// owned by someone else's predecessor range... i.e. keys only move
    /// to the removed broker's successor.
    #[test]
    fn removal_moves_keys_only_to_successor(
        positions in prop::collection::btree_set(0u64..1_000_000, 3..12),
        victim_idx in any::<prop::sample::Index>(),
        keys in prop::collection::vec("[a-z]{1,8}", 1..40),
    ) {
        let mut ring = ConsistentRing::new();
        let pos: Vec<u64> = positions.iter().copied().collect();
        for (i, &p) in pos.iter().enumerate() {
            prop_assert!(ring.insert(p, i as u32));
        }
        let victim = victim_idx.index(pos.len()) as u32;
        let successor = ring.next_after(victim).expect("n >= 3");
        let before: Vec<(String, u32)> = keys
            .iter()
            .map(|k| (k.clone(), ring.broker_for(k).expect("non-empty")))
            .collect();
        ring.remove(victim);
        for (k, owner) in before {
            let now = ring.broker_for(&k).expect("still non-empty");
            if owner == victim {
                prop_assert_eq!(now, successor, "key {} must move to successor", k);
            } else {
                prop_assert_eq!(now, owner, "key {} must not move", k);
            }
        }
    }

    /// Under arbitrary operation sequences with graceful leaves only,
    /// every published key remains resolvable while at least one broker
    /// is alive.
    #[test]
    fn graceful_service_never_loses_filings(ops in prop::collection::vec(op(), 1..40)) {
        let mut svc = BrokerageService::new();
        svc.join(0, 0);
        let mut alive = vec![0u32];
        let mut next_id = 1u32;
        let mut published: Vec<String> = Vec::new();
        let mut snippet_id = 0u64;
        for o in &ops {
            match o {
                RingOp::Join(p) => {
                    let pos = u64::from(*p) % planetp_broker::ring::RING_MAX;
                    if svc.join(next_id, pos) {
                        alive.push(next_id);
                        next_id += 1;
                    }
                }
                RingOp::LeaveGraceful(i) | RingOp::LeaveAbrupt(i) => {
                    // Keep at least one broker; all leaves graceful here.
                    if alive.len() > 1 {
                        let idx = usize::from(*i) % alive.len();
                        let id = alive.swap_remove(idx);
                        svc.leave_graceful(id);
                    }
                }
                RingOp::Publish(k) => {
                    snippet_id += 1;
                    let key = format!("key-{k}");
                    svc.publish(Snippet {
                        id: snippet_id,
                        publisher: 0,
                        xml: "<s/>".into(),
                        keys: vec![key.clone()],
                        discard_at: u64::MAX,
                    });
                    published.push(key);
                }
            }
        }
        for key in &published {
            prop_assert!(
                !svc.lookup(key, 0).is_empty(),
                "key {key} lost despite graceful-only membership changes"
            );
        }
    }

    /// key_position is total and stable; the successor function agrees
    /// with a brute-force scan.
    #[test]
    fn successor_matches_bruteforce(
        positions in prop::collection::btree_set(0u64..u32::MAX as u64, 1..16),
        probe in any::<u32>(),
    ) {
        let mut ring = ConsistentRing::new();
        let pos: Vec<u64> = positions.iter().copied().collect();
        for (i, &p) in pos.iter().enumerate() {
            ring.insert(p, i as u32);
        }
        let probe = u64::from(probe);
        let got = ring.successor_of(probe).expect("non-empty");
        // Brute force: smallest position >= probe, else smallest overall.
        let expect_pos = pos
            .iter()
            .copied()
            .filter(|&p| p >= probe % planetp_broker::ring::RING_MAX)
            .min()
            .unwrap_or_else(|| *pos.iter().min().expect("non-empty"));
        let expect = pos.iter().position(|&p| p == expect_pos).expect("present") as u32;
        prop_assert_eq!(got, expect);
    }

    /// Hash positions stay inside the predetermined range.
    #[test]
    fn key_position_in_range(key in ".{0,64}") {
        prop_assert!(key_position(&key) < planetp_broker::ring::RING_MAX);
    }
}
