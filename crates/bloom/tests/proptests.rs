//! Property-based tests for the Bloom filter crate.

use planetp_bloom::{BloomDiff, BloomFilter, BloomParams, CompressedBloom};
use proptest::prelude::*;

fn small_params() -> impl Strategy<Value = BloomParams> {
    (256usize..8192, 1u32..6).prop_map(|(num_bits, num_hashes)| BloomParams {
        num_bits,
        num_hashes,
    })
}

fn key_set() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec("[a-z]{1,12}", 0..200)
}

proptest! {
    /// No false negatives, ever: every inserted key tests present.
    #[test]
    fn no_false_negatives(params in small_params(), keys in key_set()) {
        let mut f = BloomFilter::new(params);
        for k in &keys {
            f.insert(k);
        }
        for k in &keys {
            prop_assert!(f.contains(k));
        }
    }

    /// Compression is lossless for arbitrary fills.
    #[test]
    fn compress_roundtrip(params in small_params(), keys in key_set()) {
        let mut f = BloomFilter::new(params);
        for k in &keys {
            f.insert(k);
        }
        let c = CompressedBloom::compress(&f);
        prop_assert_eq!(c.decompress().unwrap(), f);
    }

    /// diff(old, new).apply(old) == new for any pair of same-param filters.
    #[test]
    fn diff_roundtrip(
        params in small_params(),
        old_keys in key_set(),
        new_keys in key_set(),
    ) {
        let mut old = BloomFilter::new(params);
        let mut new = BloomFilter::new(params);
        for k in &old_keys {
            old.insert(k);
        }
        for k in &new_keys {
            new.insert(k);
        }
        let d = BloomDiff::between(&old, &new);
        prop_assert_eq!(d.apply(&old).unwrap(), new);
    }

    /// Union is commutative (on the bit level) and a superset of both.
    #[test]
    fn union_commutes_and_dominates(
        params in small_params(),
        ka in key_set(),
        kb in key_set(),
    ) {
        let mut a = BloomFilter::new(params);
        let mut b = BloomFilter::new(params);
        for k in &ka { a.insert(k); }
        for k in &kb { b.insert(k); }
        let mut ab = a.clone();
        ab.union_with(&b);
        let mut ba = b.clone();
        ba.union_with(&a);
        prop_assert_eq!(ab.words(), ba.words());
        prop_assert!(a.is_subset_of(&ab));
        prop_assert!(b.is_subset_of(&ab));
        for k in ka.iter().chain(&kb) {
            prop_assert!(ab.contains(k));
        }
    }

    /// set_bit_positions is sorted, deduplicated, and reconstructs the filter.
    #[test]
    fn positions_roundtrip(params in small_params(), keys in key_set()) {
        let mut f = BloomFilter::new(params);
        for k in &keys { f.insert(k); }
        let pos = f.set_bit_positions();
        prop_assert!(pos.windows(2).all(|w| w[0] < w[1]));
        let g = BloomFilter::from_set_bits(params, &pos, f.keys_inserted());
        prop_assert_eq!(g, f);
    }

    /// A delta chain (the wire form gossip forwards) applied step by
    /// step equals the final filter exactly — the oracle being the
    /// filter built directly from all the keys. Both the allocating
    /// `apply` and the query-mirror `apply_in_place` must agree.
    #[test]
    fn delta_chain_equals_final_filter(
        params in small_params(),
        batches in prop::collection::vec(
            prop::collection::vec("[a-z]{1,12}", 0..60),
            1..5,
        ),
    ) {
        let mut versions = vec![BloomFilter::new(params)];
        for batch in &batches {
            let mut next = versions.last().unwrap().clone();
            for k in batch {
                next.insert(k);
            }
            versions.push(next);
        }
        let chain: Vec<BloomDiff> = versions
            .windows(2)
            .map(|w| BloomDiff::between(&w[0], &w[1]))
            .collect();

        let mut rebuilt = versions[0].clone();
        let mut mirror = versions[0].clone();
        for d in &chain {
            rebuilt = d.apply(&rebuilt).unwrap();
            prop_assert!(d.apply_in_place(&mut mirror));
        }
        prop_assert_eq!(&rebuilt, versions.last().unwrap());
        prop_assert_eq!(&mirror, versions.last().unwrap());
        prop_assert_eq!(
            mirror.keys_inserted(),
            versions.last().unwrap().keys_inserted()
        );
    }

    /// A receiver already at an intermediate version applies only the
    /// chain suffix (what the gossip engine does) and still lands on
    /// the final filter, bit for bit.
    #[test]
    fn chain_suffix_lands_on_final_filter(
        params in small_params(),
        batches in prop::collection::vec(
            prop::collection::vec("[a-z]{1,12}", 0..60),
            2..5,
        ),
        skip_frac in 0.0f64..1.0,
    ) {
        let mut versions = vec![BloomFilter::new(params)];
        for batch in &batches {
            let mut next = versions.last().unwrap().clone();
            for k in batch {
                next.insert(k);
            }
            versions.push(next);
        }
        let chain: Vec<BloomDiff> = versions
            .windows(2)
            .map(|w| BloomDiff::between(&w[0], &w[1]))
            .collect();
        let skip = ((chain.len() as f64) * skip_frac) as usize;

        let mut mirror = versions[skip].clone();
        for d in &chain[skip..] {
            prop_assert!(d.apply_in_place(&mut mirror));
        }
        prop_assert_eq!(&mirror, versions.last().unwrap());
    }

    /// A chain built for one filter geometry can never corrupt a base
    /// with different parameters: every step is rejected and the base
    /// comes through bit-identical. This is the "fall back to the full
    /// filter, never apply a wrong one" guarantee the gossip fallback
    /// path relies on.
    #[test]
    fn mismatched_params_chain_rejected_without_mutation(
        params in small_params(),
        batches in prop::collection::vec(
            prop::collection::vec("[a-z]{1,12}", 1..60),
            1..4,
        ),
        other_keys in key_set(),
    ) {
        let mut versions = vec![BloomFilter::new(params)];
        for batch in &batches {
            let mut next = versions.last().unwrap().clone();
            for k in batch {
                next.insert(k);
            }
            versions.push(next);
        }
        let chain: Vec<BloomDiff> = versions
            .windows(2)
            .map(|w| BloomDiff::between(&w[0], &w[1]))
            .collect();

        let other_params = BloomParams {
            num_bits: params.num_bits * 2,
            num_hashes: params.num_hashes,
        };
        let mut other = BloomFilter::new(other_params);
        for k in &other_keys {
            other.insert(k);
        }
        let snapshot = other.clone();
        for d in &chain {
            prop_assert!(d.apply(&other).is_none());
            prop_assert!(!d.apply_in_place(&mut other));
        }
        prop_assert_eq!(other, snapshot);
    }

    /// Golomb value coding round-trips for arbitrary values and parameters.
    #[test]
    fn golomb_value_roundtrip(values in prop::collection::vec(0u32..1_000_000, 0..100), m in 1u32..5000) {
        use planetp_bloom::golomb::{encode_value, decode_value, BitWriter, BitReader};
        let mut w = BitWriter::new();
        for &v in &values {
            encode_value(&mut w, v, m);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            prop_assert_eq!(decode_value(&mut r, m), Some(v));
        }
    }
}
