//! The core Bloom filter.

use serde::{Deserialize, Serialize};

use crate::hashing::DoubleHasher;

/// A query key hashed exactly once, reusable across any number of
/// filters.
///
/// On the query hot path every term is probed against all `N` directory
/// filters; hashing the term inside [`BloomFilter::contains`] would
/// repeat the two base hashes `N` times. A `HashedKey` front-loads that
/// work so probing a filter costs only `num_hashes` word reads.
#[derive(Debug, Clone, Copy)]
pub struct HashedKey {
    hasher: DoubleHasher,
}

impl HashedKey {
    /// Hash `key` once.
    #[inline]
    pub fn new(key: &str) -> Self {
        Self {
            hasher: DoubleHasher::new(key),
        }
    }

    /// The underlying double-hashing index generator.
    #[inline]
    pub fn hasher(&self) -> &DoubleHasher {
        &self.hasher
    }
}

/// Probe one pre-hashed key against every filter in `filters`.
///
/// Returns `(presence, count)` where `presence` is a little-endian
/// bitset (bit `i` set ⇔ `filters[i]` reports the key present) and
/// `count` is its popcount.
///
/// When all filters share the same parameters — the common case, since a
/// PlanetP community gossips constant-size filters (§7.1) — the bit
/// indices are resolved to `(word, mask)` probes once, and each filter
/// is tested word-wise against those probes: `N` filters cost
/// `N · num_hashes` word reads with zero re-hashing. Heterogeneous
/// parameter sets fall back to per-filter probing.
pub fn probe_row<F: std::borrow::Borrow<BloomFilter>>(
    key: &HashedKey,
    filters: &[F],
) -> (Vec<u64>, usize) {
    let mut presence = vec![0u64; filters.len().div_ceil(64)];
    let mut count = 0usize;
    let shared = filters.first().map(|f| f.borrow().params);
    let homogeneous = shared
        .map(|p| filters.iter().all(|f| f.borrow().params == p))
        .unwrap_or(false);
    if homogeneous {
        let params = shared.expect("checked non-empty");
        let probes: Vec<(usize, u64)> = (0..params.num_hashes)
            .map(|i| {
                let idx = key.hasher.index(i, params.num_bits);
                (idx / 64, 1u64 << (idx % 64))
            })
            .collect();
        for (i, f) in filters.iter().enumerate() {
            let words = f.borrow().words();
            if probes.iter().all(|&(w, m)| words[w] & m != 0) {
                presence[i / 64] |= 1u64 << (i % 64);
                count += 1;
            }
        }
    } else {
        for (i, f) in filters.iter().enumerate() {
            if f.borrow().contains_hashed(key) {
                presence[i / 64] |= 1u64 << (i % 64);
                count += 1;
            }
        }
    }
    (presence, count)
}

/// Sizing parameters for a [`BloomFilter`].
///
/// The paper uses constant-size 50 KB filters with two hash functions,
/// chosen to "summarize up to 50,000 terms with less than 5% error"
/// (§7.1). Those are the [`BloomParams::paper`] defaults; other sizes are
/// supported because the authors note they "will almost certainly move to
/// variable size filters".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BloomParams {
    /// Total number of bits in the filter.
    pub num_bits: usize,
    /// Number of hash functions (bits set per key).
    pub num_hashes: u32,
}

impl BloomParams {
    /// The paper's constants: 50 KB (409,600 bits), two hash functions.
    pub const fn paper() -> Self {
        Self {
            num_bits: 50 * 1024 * 8,
            num_hashes: 2,
        }
    }

    /// Pick parameters for an expected number of keys and a target
    /// false-positive rate, using the standard optima
    /// `m = -n ln p / (ln 2)^2` and `k = (m/n) ln 2`.
    pub fn for_capacity(expected_keys: usize, target_fpr: f64) -> Self {
        assert!(expected_keys > 0, "capacity must be positive");
        assert!(
            target_fpr > 0.0 && target_fpr < 1.0,
            "false positive rate must be in (0, 1)"
        );
        let n = expected_keys as f64;
        let ln2 = std::f64::consts::LN_2;
        let m = (-n * target_fpr.ln() / (ln2 * ln2)).ceil().max(64.0);
        let k = ((m / n) * ln2).round().max(1.0);
        Self {
            num_bits: m as usize,
            num_hashes: k as u32,
        }
    }
}

impl Default for BloomParams {
    fn default() -> Self {
        Self::paper()
    }
}

/// Error from [`BloomFilter::try_union_with`]: the operands hash into
/// different bit spaces, so their words cannot be OR-merged.
///
/// Filters that arrive off the wire carry whatever parameters the
/// remote peer chose, so any union over remote-controlled filters must
/// go through the fallible path and treat this as data, not a bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamMismatch {
    /// Parameters of the filter being merged into.
    pub ours: BloomParams,
    /// Parameters of the foreign filter.
    pub theirs: BloomParams,
}

impl std::fmt::Display for ParamMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cannot union Bloom filters with different parameters: \
             {}x{} vs {}x{}",
            self.ours.num_bits, self.ours.num_hashes, self.theirs.num_bits, self.theirs.num_hashes
        )
    }
}

impl std::error::Error for ParamMismatch {}

/// A Bloom filter over strings.
///
/// Supports membership queries with no false negatives, plus the
/// set-algebra operations PlanetP relies on: `union` (a peer "may choose
/// to combine the filters of several peers to save space", §2) and XOR
/// diffs (see [`crate::BloomDiff`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BloomFilter {
    params: BloomParams,
    bits: Vec<u64>,
    /// Number of insert calls (not distinct keys); used for FPR estimates.
    keys_inserted: u64,
}

impl BloomFilter {
    /// Empty filter with the given parameters.
    pub fn new(params: BloomParams) -> Self {
        let words = params.num_bits.div_ceil(64);
        Self {
            params,
            bits: vec![0; words],
            keys_inserted: 0,
        }
    }

    /// Empty filter with the paper's 50 KB / 2-hash parameters.
    pub fn with_paper_defaults() -> Self {
        Self::new(BloomParams::paper())
    }

    /// The filter's sizing parameters.
    pub fn params(&self) -> BloomParams {
        self.params
    }

    /// Number of bits in the filter.
    pub fn num_bits(&self) -> usize {
        self.params.num_bits
    }

    /// Raw 64-bit words backing the filter.
    pub fn words(&self) -> &[u64] {
        &self.bits
    }

    /// Insert a key. Returns `true` if any bit changed (i.e. the key was
    /// definitely not present before).
    pub fn insert(&mut self, key: &str) -> bool {
        let h = DoubleHasher::new(key);
        let mut changed = false;
        for i in 0..self.params.num_hashes {
            let idx = h.index(i, self.params.num_bits);
            let (w, b) = (idx / 64, idx % 64);
            let mask = 1u64 << b;
            if self.bits[w] & mask == 0 {
                self.bits[w] |= mask;
                changed = true;
            }
        }
        self.keys_inserted += 1;
        changed
    }

    /// Insert every key from an iterator.
    pub fn extend<'a, I: IntoIterator<Item = &'a str>>(&mut self, keys: I) {
        for k in keys {
            self.insert(k);
        }
    }

    /// Membership test: `false` means *definitely absent*; `true` means
    /// present with probability `1 - estimated_fpr()`.
    pub fn contains(&self, key: &str) -> bool {
        self.contains_hashed(&HashedKey::new(key))
    }

    /// Membership test against a pre-hashed key — use when the same key
    /// is probed against many filters (see [`HashedKey`]).
    #[inline]
    pub fn contains_hashed(&self, key: &HashedKey) -> bool {
        for i in 0..self.params.num_hashes {
            let idx = key.hasher.index(i, self.params.num_bits);
            if self.bits[idx / 64] & (1 << (idx % 64)) == 0 {
                return false;
            }
        }
        true
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Fraction of bits set.
    pub fn fill_ratio(&self) -> f64 {
        self.count_ones() as f64 / self.params.num_bits as f64
    }

    /// Estimated false-positive rate given the current fill:
    /// `fill_ratio ^ num_hashes`.
    pub fn estimated_fpr(&self) -> f64 {
        self.fill_ratio().powi(self.params.num_hashes as i32)
    }

    /// Maximum-likelihood estimate of the number of *distinct* keys
    /// inserted, from the fill ratio: `-(m/k) ln(1 - X/m)`.
    pub fn estimated_keys(&self) -> f64 {
        let m = self.params.num_bits as f64;
        let x = self.count_ones() as f64;
        if x >= m {
            return f64::INFINITY;
        }
        -(m / self.params.num_hashes as f64) * (1.0 - x / m).ln()
    }

    /// Number of insert calls made (counts duplicates).
    pub fn keys_inserted(&self) -> u64 {
        self.keys_inserted
    }

    /// True if no bit is set.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Reset all bits.
    pub fn clear(&mut self) {
        self.bits.fill(0);
        self.keys_inserted = 0;
    }

    /// In-place union. Any key in either filter is in the result.
    ///
    /// Use this only when both filters are locally constructed and
    /// known to share parameters; for filters that arrived off the
    /// wire, use [`Self::try_union_with`].
    ///
    /// # Panics
    /// Panics if the parameters differ — filters hash into different bit
    /// spaces and cannot be merged.
    pub fn union_with(&mut self, other: &BloomFilter) {
        if let Err(e) = self.try_union_with(other) {
            panic!("{e}");
        }
    }

    /// Fallible in-place union: merges iff the parameters match,
    /// otherwise returns [`ParamMismatch`] and leaves `self` untouched.
    ///
    /// This is the required path for remote-controlled filters (peer
    /// summaries off the wire), where a parameter mismatch is input,
    /// not a programming error.
    pub fn try_union_with(&mut self, other: &BloomFilter) -> Result<(), ParamMismatch> {
        if self.params != other.params {
            return Err(ParamMismatch {
                ours: self.params,
                theirs: other.params,
            });
        }
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
        self.keys_inserted += other.keys_inserted;
        Ok(())
    }

    /// True if every bit set in `self` is also set in `other`; i.e. every
    /// key in `self` would also be reported present by `other`.
    pub fn is_subset_of(&self, other: &BloomFilter) -> bool {
        self.params == other.params && self.bits.iter().zip(&other.bits).all(|(a, b)| a & !b == 0)
    }

    /// Count of query keys the filter reports as present.
    pub fn count_hits<'a, I: IntoIterator<Item = &'a str>>(&self, keys: I) -> usize {
        keys.into_iter()
            .filter(|k| self.contains_hashed(&HashedKey::new(k)))
            .count()
    }

    /// Count of pre-hashed query keys the filter reports as present.
    /// The hashed counterpart of [`Self::count_hits`]: hash the query
    /// once, then count against each candidate filter.
    pub fn count_hits_hashed(&self, keys: &[HashedKey]) -> usize {
        keys.iter().filter(|k| self.contains_hashed(k)).count()
    }

    /// Sorted positions of all set bits (the representation Golomb coding
    /// compresses).
    pub fn set_bit_positions(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.count_ones());
        for (wi, &w) in self.bits.iter().enumerate() {
            let mut word = w;
            while word != 0 {
                let b = word.trailing_zeros();
                out.push((wi * 64) as u32 + b);
                word &= word - 1;
            }
        }
        out
    }

    /// Toggle (XOR) each position in `positions` and overwrite the
    /// insert counter — the primitive behind
    /// [`crate::BloomDiff::apply_in_place`]. Positions must already be
    /// validated against `num_bits`; the caller (the diff decoder) does
    /// this before mutating so a corrupt diff never half-applies.
    pub(crate) fn toggle_bits(&mut self, positions: &[u32], keys_inserted: u64) {
        for &p in positions {
            let p = p as usize;
            debug_assert!(p < self.params.num_bits, "bit position {p} out of range");
            self.bits[p / 64] ^= 1 << (p % 64);
        }
        self.keys_inserted = keys_inserted;
    }

    /// Rebuild a filter from set-bit positions (inverse of
    /// [`Self::set_bit_positions`]).
    ///
    /// `keys_inserted` is restored from the caller since positions alone
    /// cannot recover it; pass 0 if unknown.
    pub fn from_set_bits(params: BloomParams, positions: &[u32], keys_inserted: u64) -> Self {
        let mut f = Self::new(params);
        for &p in positions {
            let p = p as usize;
            assert!(p < params.num_bits, "bit position {p} out of range");
            f.bits[p / 64] |= 1 << (p % 64);
        }
        f.keys_inserted = keys_inserted;
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_contains() {
        let mut f = BloomFilter::with_paper_defaults();
        assert!(!f.contains("gossip"));
        assert!(f.insert("gossip"));
        assert!(f.contains("gossip"));
        // Re-inserting flips no new bits.
        assert!(!f.insert("gossip"));
    }

    #[test]
    fn no_false_negatives_over_many_keys() {
        let mut f = BloomFilter::with_paper_defaults();
        let keys: Vec<String> = (0..50_000).map(|i| format!("term-{i}")).collect();
        for k in &keys {
            f.insert(k);
        }
        for k in &keys {
            assert!(f.contains(k), "false negative for {k}");
        }
    }

    #[test]
    fn paper_fpr_target_holds_at_50k_keys() {
        // Paper §7.1: 50 KB filter summarizes up to 50,000 terms with
        // less than 5% error.
        let mut f = BloomFilter::with_paper_defaults();
        for i in 0..50_000 {
            f.insert(&format!("term-{i}"));
        }
        assert!(f.estimated_fpr() < 0.05, "fpr {}", f.estimated_fpr());
        // Empirical check against keys never inserted.
        let fp = (0..20_000)
            .filter(|i| f.contains(&format!("absent-{i}")))
            .count();
        let rate = fp as f64 / 20_000.0;
        assert!(rate < 0.06, "empirical fpr {rate}");
    }

    #[test]
    fn for_capacity_meets_target() {
        let params = BloomParams::for_capacity(10_000, 0.01);
        let mut f = BloomFilter::new(params);
        for i in 0..10_000 {
            f.insert(&format!("k{i}"));
        }
        let fp = (0..20_000).filter(|i| f.contains(&format!("a{i}"))).count();
        assert!((fp as f64 / 20_000.0) < 0.02);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn for_capacity_rejects_zero() {
        BloomParams::for_capacity(0, 0.01);
    }

    #[test]
    #[should_panic(expected = "false positive rate")]
    fn for_capacity_rejects_bad_fpr() {
        BloomParams::for_capacity(10, 1.5);
    }

    #[test]
    fn union_contains_both_sides() {
        let mut a = BloomFilter::with_paper_defaults();
        let mut b = BloomFilter::with_paper_defaults();
        a.insert("left");
        b.insert("right");
        a.union_with(&b);
        assert!(a.contains("left") && a.contains("right"));
    }

    #[test]
    #[should_panic(expected = "different parameters")]
    fn union_rejects_mismatched_params() {
        let mut a = BloomFilter::new(BloomParams {
            num_bits: 64,
            num_hashes: 2,
        });
        let b = BloomFilter::new(BloomParams {
            num_bits: 128,
            num_hashes: 2,
        });
        a.union_with(&b);
    }

    #[test]
    fn try_union_reports_mismatch_without_mutating() {
        let mut a = BloomFilter::new(BloomParams {
            num_bits: 64,
            num_hashes: 2,
        });
        a.insert("x");
        let snapshot = a.clone();
        let b = BloomFilter::new(BloomParams {
            num_bits: 128,
            num_hashes: 2,
        });
        let err = a.try_union_with(&b).unwrap_err();
        assert_eq!(err.ours, snapshot.params());
        assert_eq!(err.theirs, b.params());
        assert_eq!(a, snapshot, "failed union must leave the filter untouched");
        assert!(err.to_string().contains("different parameters"));
    }

    #[test]
    fn try_union_merges_matching_params() {
        let mut a = BloomFilter::with_paper_defaults();
        let mut b = BloomFilter::with_paper_defaults();
        a.insert("left");
        b.insert("right");
        a.try_union_with(&b).expect("same params");
        assert!(a.contains("left") && a.contains("right"));
        assert_eq!(a.keys_inserted(), 2);
    }

    #[test]
    fn subset_relation() {
        let mut a = BloomFilter::with_paper_defaults();
        let mut b = BloomFilter::with_paper_defaults();
        a.insert("x");
        b.insert("x");
        b.insert("y");
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
    }

    #[test]
    fn set_bits_roundtrip() {
        let mut f = BloomFilter::with_paper_defaults();
        for i in 0..1000 {
            f.insert(&format!("w{i}"));
        }
        let pos = f.set_bit_positions();
        assert!(pos.windows(2).all(|w| w[0] < w[1]), "positions sorted");
        let g = BloomFilter::from_set_bits(f.params(), &pos, f.keys_inserted());
        assert_eq!(f, g);
    }

    #[test]
    fn estimated_keys_tracks_distinct_inserts() {
        let mut f = BloomFilter::with_paper_defaults();
        for i in 0..10_000 {
            f.insert(&format!("w{i}"));
        }
        let est = f.estimated_keys();
        assert!((est - 10_000.0).abs() / 10_000.0 < 0.05, "estimate {est}");
    }

    #[test]
    fn clear_empties_filter() {
        let mut f = BloomFilter::with_paper_defaults();
        f.insert("a");
        assert!(!f.is_empty());
        f.clear();
        assert!(f.is_empty());
        assert_eq!(f.keys_inserted(), 0);
    }

    #[test]
    fn count_hits_counts_present_keys() {
        let mut f = BloomFilter::with_paper_defaults();
        f.insert("a");
        f.insert("b");
        let hits = f.count_hits(["a", "b", "absent-term-xyz"]);
        assert!(hits >= 2);
    }

    #[test]
    fn hashed_probe_agrees_with_contains() {
        let mut f = BloomFilter::with_paper_defaults();
        for i in 0..5_000 {
            f.insert(&format!("term-{i}"));
        }
        for key in ["term-0", "term-4999", "absent-a", "absent-b", ""] {
            assert_eq!(f.contains(key), f.contains_hashed(&HashedKey::new(key)));
        }
    }

    #[test]
    fn count_hits_hashed_agrees_with_count_hits() {
        let mut f = BloomFilter::with_paper_defaults();
        f.insert("x");
        f.insert("y");
        let keys = ["x", "y", "z-absent"];
        let hashed: Vec<HashedKey> = keys.iter().map(|k| HashedKey::new(k)).collect();
        assert_eq!(f.count_hits_hashed(&hashed), f.count_hits(keys));
    }

    #[test]
    fn probe_row_matches_per_filter_contains() {
        // Homogeneous filters exercise the word-wise fast path.
        let filters: Vec<BloomFilter> = (0..70)
            .map(|i| {
                let mut f = BloomFilter::with_paper_defaults();
                if i % 2 == 0 {
                    f.insert("even");
                }
                f.insert(&format!("only-{i}"));
                f
            })
            .collect();
        for key in ["even", "only-3", "absent"] {
            let hashed = HashedKey::new(key);
            let (presence, count) = probe_row(&hashed, &filters);
            let mut expect = 0usize;
            for (i, f) in filters.iter().enumerate() {
                let hit = f.contains(key);
                assert_eq!(
                    presence[i / 64] & (1u64 << (i % 64)) != 0,
                    hit,
                    "bit {i} for {key}"
                );
                expect += usize::from(hit);
            }
            assert_eq!(count, expect, "count for {key}");
        }
    }

    #[test]
    fn probe_row_heterogeneous_fallback() {
        let mut small = BloomFilter::new(BloomParams {
            num_bits: 256,
            num_hashes: 3,
        });
        let mut big = BloomFilter::with_paper_defaults();
        small.insert("k");
        big.insert("k");
        let refs: Vec<&BloomFilter> = vec![&small, &big];
        let (presence, count) = probe_row(&HashedKey::new("k"), &refs);
        assert_eq!(count, 2);
        assert_eq!(presence[0] & 0b11, 0b11);
    }

    #[test]
    fn probe_row_empty_filter_set() {
        let filters: Vec<BloomFilter> = Vec::new();
        let (presence, count) = probe_row(&HashedKey::new("k"), &filters);
        assert!(presence.is_empty());
        assert_eq!(count, 0);
    }
}
