//! The gossip wire format for Bloom filters.

use planetp_obs::Histogram;
use serde::{Deserialize, Serialize};

use crate::filter::{BloomFilter, BloomParams};
use crate::golomb;

/// A Golomb run-length compressed Bloom filter, as gossiped between peers.
///
/// Stores the gap-coded set-bit positions plus enough metadata to rebuild
/// the exact [`BloomFilter`]. For the sparse filters PlanetP gossips (1 k
/// terms in a 50 KB filter) this is ~3 KB versus 51,200 bytes raw —
/// matching Table 2's "1000 keys BF = 3000 bytes".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompressedBloom {
    params: BloomParams,
    golomb_parameter: u32,
    num_set_bits: u32,
    keys_inserted: u64,
    payload: Vec<u8>,
}

impl CompressedBloom {
    /// Compress a filter.
    pub fn compress(filter: &BloomFilter) -> Self {
        let positions = filter.set_bit_positions();
        let (m, payload) = golomb::encode_positions(&positions, filter.num_bits() as u32);
        Self {
            params: filter.params(),
            golomb_parameter: m,
            num_set_bits: positions.len() as u32,
            keys_inserted: filter.keys_inserted(),
            payload,
        }
    }

    /// Compress a filter, recording the resulting serialized size into
    /// `sizes` (typically a registry's `bloom.wire_bytes` histogram).
    /// The paper's Table 2 bandwidth model hinges on these sizes, so
    /// every compression site can feed the observability layer.
    pub fn compress_observed(filter: &BloomFilter, sizes: &Histogram) -> Self {
        let compressed = Self::compress(filter);
        sizes.observe(compressed.wire_bytes() as u64);
        compressed
    }

    /// Decompress back to the exact original filter.
    ///
    /// Returns `None` if the payload is truncated or internally
    /// inconsistent (e.g. decoded positions exceed the bit space).
    pub fn decompress(&self) -> Option<BloomFilter> {
        let positions = golomb::decode_positions(
            &self.payload,
            self.golomb_parameter,
            self.num_set_bits as usize,
        )?;
        if positions
            .iter()
            .any(|&p| p as usize >= self.params.num_bits)
        {
            return None;
        }
        Some(BloomFilter::from_set_bits(
            self.params,
            &positions,
            self.keys_inserted,
        ))
    }

    /// Apply a [`crate::BloomDiff`] without ever materializing the raw
    /// bitmap: decode both sorted position lists, take their symmetric
    /// difference with one merge pass, and re-encode. This is how a
    /// directory holding compressed filters consumes delta gossip —
    /// O(set bits) work instead of O(filter bits) decompress + rebuild +
    /// recompress.
    ///
    /// Returns `None` — leaving `self` untouched — on parameter mismatch
    /// or a corrupt payload (ours or the diff's); callers treat that as
    /// a broken chain and fall back to requesting the full filter.
    pub fn apply_diff(&self, diff: &crate::BloomDiff) -> Option<CompressedBloom> {
        if self.params != diff.params() {
            return None;
        }
        let base = golomb::decode_positions(
            &self.payload,
            self.golomb_parameter,
            self.num_set_bits as usize,
        )?;
        if base.iter().any(|&p| p as usize >= self.params.num_bits) {
            return None;
        }
        let toggles = diff.positions()?;
        // Sorted symmetric difference: positions in exactly one list.
        let mut merged = Vec::with_capacity(base.len() + toggles.len());
        let (mut i, mut j) = (0, 0);
        while i < base.len() && j < toggles.len() {
            match base[i].cmp(&toggles[j]) {
                std::cmp::Ordering::Less => {
                    merged.push(base[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push(toggles[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        merged.extend_from_slice(&base[i..]);
        merged.extend_from_slice(&toggles[j..]);
        let (m, payload) = golomb::encode_positions(&merged, self.params.num_bits as u32);
        Some(Self {
            params: self.params,
            golomb_parameter: m,
            num_set_bits: merged.len() as u32,
            keys_inserted: diff.new_keys_inserted(),
            payload,
        })
    }

    /// Size of the compressed payload in bytes (excludes the small fixed
    /// header counted separately by the simulator's message model).
    pub fn payload_bytes(&self) -> usize {
        self.payload.len()
    }

    /// Total serialized size: payload plus a 24-byte fixed header
    /// (params, parameter, counts).
    pub fn wire_bytes(&self) -> usize {
        self.payload.len() + 24
    }

    /// Number of set bits represented.
    pub fn num_set_bits(&self) -> u32 {
        self.num_set_bits
    }

    /// Compression ratio versus the raw bitmap.
    pub fn ratio(&self) -> f64 {
        self.wire_bytes() as f64 / (self.params.num_bits as f64 / 8.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filter_with_keys(n: usize) -> BloomFilter {
        let mut f = BloomFilter::with_paper_defaults();
        for i in 0..n {
            f.insert(&format!("term-{i}"));
        }
        f
    }

    #[test]
    fn roundtrip_exact() {
        for n in [0usize, 1, 10, 1000, 20_000] {
            let f = filter_with_keys(n);
            let c = CompressedBloom::compress(&f);
            let g = c.decompress().expect("decompress");
            assert_eq!(f, g, "n={n}");
        }
    }

    #[test]
    fn table2_sizes_hold() {
        // Table 2: 1000-key BF ≈ 3000 bytes, 20000-key BF ≈ 16000 bytes.
        let c1k = CompressedBloom::compress(&filter_with_keys(1000));
        assert!(
            (1000..=4500).contains(&c1k.wire_bytes()),
            "1k keys -> {} bytes",
            c1k.wire_bytes()
        );
        // 20k keys * 2 hashes fill ~9% of the bit space; the entropy
        // bound there is ~23 KB, so we land slightly above the paper's
        // 16 KB figure (their filter was likely less full).
        let c20k = CompressedBloom::compress(&filter_with_keys(20_000));
        assert!(
            (8_000..=24_000).contains(&c20k.wire_bytes()),
            "20k keys -> {} bytes",
            c20k.wire_bytes()
        );
    }

    #[test]
    fn empty_filter_compresses_to_header_only() {
        let c = CompressedBloom::compress(&BloomFilter::with_paper_defaults());
        assert_eq!(c.payload_bytes(), 0);
        assert_eq!(c.num_set_bits(), 0);
        assert!(c.decompress().unwrap().is_empty());
    }

    #[test]
    fn ratio_below_one_for_sparse() {
        let c = CompressedBloom::compress(&filter_with_keys(1000));
        assert!(c.ratio() < 0.1, "ratio {}", c.ratio());
    }

    #[test]
    fn compress_observed_records_wire_size() {
        let sizes = Histogram::detached(planetp_obs::SIZE_BYTES_BUCKETS);
        let c = CompressedBloom::compress_observed(&filter_with_keys(1000), &sizes);
        assert_eq!(sizes.count(), 1);
        assert_eq!(sizes.sum(), c.wire_bytes() as u64);
    }

    #[test]
    fn apply_diff_matches_decompress_apply_recompress() {
        let old = filter_with_keys(5000);
        let mut new = old.clone();
        for i in 5000..5200 {
            new.insert(&format!("term-{i}"));
        }
        let diff = crate::BloomDiff::between(&old, &new);
        let merged = CompressedBloom::compress(&old)
            .apply_diff(&diff)
            .expect("matching params");
        assert_eq!(merged, CompressedBloom::compress(&new));
        assert_eq!(merged.decompress().unwrap(), new);
    }

    #[test]
    fn apply_diff_rejects_param_mismatch_and_corruption() {
        let old = filter_with_keys(100);
        let new = filter_with_keys(200);
        let diff = crate::BloomDiff::between(&old, &new);
        let other = BloomFilter::new(crate::BloomParams {
            num_bits: 128,
            num_hashes: 2,
        });
        assert!(CompressedBloom::compress(&other)
            .apply_diff(&diff)
            .is_none());
        let mut bad = CompressedBloom::compress(&old);
        bad.payload.truncate(bad.payload.len() / 2);
        assert!(bad.apply_diff(&diff).is_none());
    }

    #[test]
    fn truncated_payload_fails_cleanly() {
        let c = CompressedBloom::compress(&filter_with_keys(1000));
        let mut bad = c.clone();
        bad.payload.truncate(bad.payload.len() / 2);
        assert!(bad.decompress().is_none());
    }
}
