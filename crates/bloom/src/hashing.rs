//! Hash functions used to derive Bloom filter bit indices.
//!
//! The paper computes *n* indices per term "typically via n different
//! hashing functions". We use the standard Kirsch–Mitzenmacher double
//! hashing construction: two independent 64-bit hashes `h1`, `h2` generate
//! the family `g_i(x) = h1(x) + i * h2(x)`, which preserves the asymptotic
//! false-positive rate of truly independent hash functions while costing
//! two hash evaluations per key.
//!
//! Both base hashes are implemented here from scratch (FNV-1a and a
//! xorshift-multiply finalizer over a seeded FNV stream) so the crate has
//! no hashing dependencies and its output is stable across platforms —
//! important because filters are exchanged between peers on the wire.

/// 64-bit FNV-1a with a caller-provided seed folded into the offset basis.
#[inline]
pub fn fnv1a64(seed: u64, bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET ^ seed.wrapping_mul(PRIME);
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// SplitMix64 finalizer; decorrelates the FNV stream for the second hash.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Double-hashing index generator for a single key.
///
/// Yields `num_hashes` bit positions in `[0, num_bits)`.
#[derive(Debug, Clone, Copy)]
pub struct DoubleHasher {
    h1: u64,
    h2: u64,
}

impl DoubleHasher {
    /// Hash `key` once; the resulting struct can enumerate any number of
    /// derived indices without rehashing the key.
    #[inline]
    pub fn new(key: &str) -> Self {
        let bytes = key.as_bytes();
        // FNV-1a alone has poor avalanche in the high bits for short keys
        // (and fastrange consumes the high bits), so finalize with
        // SplitMix64.
        let h1 = mix64(fnv1a64(0x5149_9df9_4c81_3db9, bytes));
        // Mixing h1 rather than rehashing the bytes keeps the second pass
        // O(1); SplitMix64 is a full-avalanche finalizer so h2 is
        // effectively independent of h1.
        let mut h2 = mix64(h1 ^ fnv1a64(0x9ae1_6a3b_2f90_404f, bytes));
        // h2 must be odd so that i*h2 walks the whole index space even for
        // power-of-two bit counts.
        h2 |= 1;
        Self { h1, h2 }
    }

    /// The `i`-th derived index in `[0, num_bits)`.
    #[inline]
    pub fn index(&self, i: u32, num_bits: usize) -> usize {
        debug_assert!(num_bits > 0);
        let g = self.h1.wrapping_add(u64::from(i).wrapping_mul(self.h2));
        // Lemire's fastrange: maps uniformly without a modulo.
        ((u128::from(g) * num_bits as u128) >> 64) as usize
    }

    /// Iterator over the first `num_hashes` indices.
    pub fn indices(&self, num_hashes: u32, num_bits: usize) -> impl Iterator<Item = usize> + '_ {
        (0..num_hashes).map(move |i| self.index(i, num_bits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_distinguishes_inputs() {
        assert_ne!(fnv1a64(0, b"gossip"), fnv1a64(0, b"gossiq"));
        assert_ne!(fnv1a64(0, b"ab"), fnv1a64(0, b"ba"));
        assert_ne!(fnv1a64(1, b"gossip"), fnv1a64(2, b"gossip"));
    }

    #[test]
    fn fnv_empty_input_depends_on_seed() {
        assert_ne!(fnv1a64(1, b""), fnv1a64(2, b""));
    }

    #[test]
    fn mix64_changes_value() {
        assert_ne!(mix64(0), 0);
        assert_ne!(mix64(1), mix64(2));
    }

    #[test]
    fn indices_in_range() {
        let h = DoubleHasher::new("term");
        for bits in [1usize, 7, 64, 409_600] {
            for i in 0..8 {
                assert!(h.index(i, bits) < bits);
            }
        }
    }

    #[test]
    fn hasher_is_deterministic() {
        let a = DoubleHasher::new("planetp");
        let b = DoubleHasher::new("planetp");
        let ia: Vec<_> = a.indices(4, 1000).collect();
        let ib: Vec<_> = b.indices(4, 1000).collect();
        assert_eq!(ia, ib);
    }

    #[test]
    fn different_keys_rarely_collide_on_all_indices() {
        let bits = 409_600;
        let a: Vec<_> = DoubleHasher::new("alpha").indices(2, bits).collect();
        let b: Vec<_> = DoubleHasher::new("beta").indices(2, bits).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn index_distribution_is_roughly_uniform() {
        // Bucket 10k keys' first index into 16 buckets; each should get a
        // share well away from zero.
        let bits = 1 << 16;
        let mut buckets = [0u32; 16];
        for k in 0..10_000 {
            let idx = DoubleHasher::new(&format!("key-{k}")).index(0, bits);
            buckets[idx * 16 / bits] += 1;
        }
        for &c in &buckets {
            assert!(c > 400, "bucket count {c} too skewed: {buckets:?}");
        }
    }
}
