//! Bloom filters for PlanetP.
//!
//! PlanetP (Cuenca-Acuna et al., HPDC 2003) summarizes each peer's inverted
//! index with a Bloom filter and gossips these summaries so that every peer
//! holds a copy of the *global directory*: the membership list plus one
//! filter per member. This crate provides:
//!
//! - [`BloomFilter`]: a classic k-hash Bloom filter over strings with
//!   set-algebra operations (union, intersection), fill-ratio and
//!   false-positive-rate estimation.
//! - [`BloomDiff`]: XOR deltas between two versions of a filter, so that a
//!   peer that adds terms gossips only the changed bits ("PlanetP sends
//!   diffs of the Bloom filters to save bandwidth", §7.2).
//! - [`CompressedBloom`]: the gossip wire format — a Golomb run-length
//!   coding of the set-bit gaps, which the paper reports outperforms gzip
//!   for their sparse constant-size (50 KB) filters.
//! - [`golomb`]: the underlying Golomb/Rice coder, usable on any sorted
//!   sequence of deltas.
//!
//! # Example
//!
//! ```
//! use planetp_bloom::BloomFilter;
//!
//! let mut summary = BloomFilter::with_paper_defaults();
//! summary.insert("epidemic");
//! summary.insert("gossip");
//! assert!(summary.contains("gossip"));
//! // False positives are possible, false negatives are not.
//! assert!(!summary.contains("zebra") || summary.estimated_fpr() > 0.0);
//! ```

pub mod compressed;
pub mod diff;
pub mod filter;
pub mod golomb;
pub mod hashing;

pub use compressed::CompressedBloom;
pub use diff::{BloomDiff, FilterUpdate};
pub use filter::{probe_row, BloomFilter, BloomParams, HashedKey, ParamMismatch};
pub use hashing::DoubleHasher;
