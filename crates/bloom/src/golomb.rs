//! Golomb run-length coding.
//!
//! PlanetP compresses its constant-size 50 KB Bloom filters with "a
//! run-length compression that uses Golomb codes to encode runs, which
//! outperforms gzip in our specific context" (§7.1). A sparse filter is a
//! long bit string with rare 1s; the gaps between consecutive 1s are
//! geometrically distributed, which is exactly the distribution Golomb
//! codes are optimal for.
//!
//! A value `v` is coded with parameter `m` as a unary quotient
//! `q = v / m` (q ones then a zero) followed by the remainder `r = v % m`
//! in truncated binary. The optimal `m` for gap mean `g` is
//! `m ≈ -1/log2(1 - 1/g)`, approximately `g * ln 2`.

/// Append-only bit writer (MSB-first within each byte).
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits used in the final byte (0..=7); 0 means byte-aligned.
    used: u8,
}

impl BitWriter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a single bit.
    #[inline]
    pub fn push_bit(&mut self, bit: bool) {
        if self.used == 0 {
            self.bytes.push(0);
        }
        if bit {
            let last = self.bytes.last_mut().expect("byte pushed above");
            *last |= 1 << (7 - self.used);
        }
        self.used = (self.used + 1) % 8;
    }

    /// Append the low `width` bits of `value`, most significant first.
    pub fn push_bits(&mut self, value: u32, width: u32) {
        debug_assert!(width <= 32);
        for i in (0..width).rev() {
            self.push_bit(value >> i & 1 == 1);
        }
    }

    /// Total bits written.
    pub fn bit_len(&self) -> usize {
        if self.used == 0 {
            self.bytes.len() * 8
        } else {
            (self.bytes.len() - 1) * 8 + self.used as usize
        }
    }

    /// Finish and return the backing bytes (zero-padded to a byte).
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// Sequential bit reader over a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Read one bit; `None` at end of input.
    #[inline]
    pub fn read_bit(&mut self) -> Option<bool> {
        let byte = *self.bytes.get(self.pos / 8)?;
        let bit = byte >> (7 - (self.pos % 8)) & 1 == 1;
        self.pos += 1;
        Some(bit)
    }

    /// Read `width` bits MSB-first; `None` if input exhausted.
    pub fn read_bits(&mut self, width: u32) -> Option<u32> {
        let mut v = 0u32;
        for _ in 0..width {
            v = (v << 1) | u32::from(self.read_bit()?);
        }
        Some(v)
    }

    /// Bits consumed so far.
    pub fn bits_read(&self) -> usize {
        self.pos
    }
}

/// Optimal Golomb parameter for gaps with mean `mean_gap`.
pub fn optimal_parameter(mean_gap: f64) -> u32 {
    if mean_gap <= 1.0 {
        return 1;
    }
    // m = ceil(-1 / log2(1 - 1/g)); for large g this is ~ g ln2.
    let p = 1.0 / mean_gap;
    let m = (-1.0 / (1.0 - p).log2()).ceil();
    if m.is_finite() && m >= 1.0 {
        m as u32
    } else {
        (mean_gap * std::f64::consts::LN_2).ceil().max(1.0) as u32
    }
}

/// Encode one value with Golomb parameter `m` (must be ≥ 1).
pub fn encode_value(w: &mut BitWriter, value: u32, m: u32) {
    debug_assert!(m >= 1);
    let q = value / m;
    let r = value % m;
    for _ in 0..q {
        w.push_bit(true);
    }
    w.push_bit(false);
    // Truncated binary for the remainder.
    let b = 32 - (m - 1).leading_zeros().min(31); // ceil(log2 m), 0 when m == 1
    if m == 1 {
        return;
    }
    let cutoff = (1u32 << b) - m;
    if r < cutoff {
        w.push_bits(r, b - 1);
    } else {
        w.push_bits(r + cutoff, b);
    }
}

/// Decode one value with Golomb parameter `m`.
pub fn decode_value(r: &mut BitReader<'_>, m: u32) -> Option<u32> {
    debug_assert!(m >= 1);
    let mut q = 0u32;
    while r.read_bit()? {
        q += 1;
    }
    if m == 1 {
        return Some(q);
    }
    let b = 32 - (m - 1).leading_zeros().min(31);
    let cutoff = (1u32 << b) - m;
    let head = if b > 1 { r.read_bits(b - 1)? } else { 0 };
    let rem = if head < cutoff {
        head
    } else {
        ((head << 1) | u32::from(r.read_bit()?)) - cutoff
    };
    Some(q * m + rem)
}

/// Encode a sorted sequence of bit positions as gap-coded Golomb values.
///
/// Returns `(parameter, payload)`. The first gap is `positions[0]`, later
/// gaps are `positions[i] - positions[i-1] - 1` (consecutive set bits code
/// as gap 0).
pub fn encode_positions(positions: &[u32], universe: u32) -> (u32, Vec<u8>) {
    let mean_gap = if positions.is_empty() {
        universe.max(1) as f64
    } else {
        universe as f64 / positions.len() as f64
    };
    let m = optimal_parameter(mean_gap);
    let mut w = BitWriter::new();
    let mut prev: Option<u32> = None;
    for &p in positions {
        let gap = match prev {
            None => p,
            Some(q) => {
                debug_assert!(p > q, "positions must be strictly increasing");
                p - q - 1
            }
        };
        encode_value(&mut w, gap, m);
        prev = Some(p);
    }
    (m, w.into_bytes())
}

/// Decode `count` positions encoded by [`encode_positions`].
pub fn decode_positions(payload: &[u8], m: u32, count: usize) -> Option<Vec<u32>> {
    let mut r = BitReader::new(payload);
    let mut out = Vec::with_capacity(count);
    let mut prev: Option<u32> = None;
    for _ in 0..count {
        let gap = decode_value(&mut r, m)?;
        let p = match prev {
            None => gap,
            Some(q) => q.checked_add(gap)?.checked_add(1)?,
        };
        out.push(p);
        prev = Some(p);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitwriter_roundtrip_bits() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, true, false, true];
        for &b in &pattern {
            w.push_bit(b);
        }
        assert_eq!(w.bit_len(), 9);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit(), Some(b));
        }
    }

    #[test]
    fn push_bits_msb_first() {
        let mut w = BitWriter::new();
        w.push_bits(0b1011, 4);
        let bytes = w.into_bytes();
        assert_eq!(bytes[0], 0b1011_0000);
    }

    #[test]
    fn reader_returns_none_at_end() {
        let mut r = BitReader::new(&[]);
        assert_eq!(r.read_bit(), None);
        assert_eq!(r.read_bits(3), None);
    }

    #[test]
    fn golomb_value_roundtrip_various_parameters() {
        for m in [1u32, 2, 3, 5, 7, 8, 64, 100, 1000] {
            let mut w = BitWriter::new();
            let values = [0u32, 1, 2, 3, m, m + 1, 7 * m + 3, 12345];
            for &v in &values {
                encode_value(&mut w, v, m);
            }
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            for &v in &values {
                assert_eq!(decode_value(&mut r, m), Some(v), "m={m} v={v}");
            }
        }
    }

    #[test]
    fn optimal_parameter_scales_with_gap() {
        assert_eq!(optimal_parameter(1.0), 1);
        let m10 = optimal_parameter(10.0);
        let m100 = optimal_parameter(100.0);
        assert!(m10 > 1 && m100 > m10);
        // m ~ g ln2
        assert!((f64::from(m100) - 100.0 * std::f64::consts::LN_2).abs() < 10.0);
    }

    #[test]
    fn positions_roundtrip() {
        let pos = vec![0u32, 1, 2, 50, 51, 1000, 40_000, 409_599];
        let (m, payload) = encode_positions(&pos, 409_600);
        let back = decode_positions(&payload, m, pos.len()).unwrap();
        assert_eq!(back, pos);
    }

    #[test]
    fn empty_positions_roundtrip() {
        let (m, payload) = encode_positions(&[], 409_600);
        let back = decode_positions(&payload, m, 0).unwrap();
        assert!(back.is_empty());
        assert!(payload.is_empty());
    }

    #[test]
    fn sparse_encoding_beats_raw_bitmap() {
        // 1000 keys * 2 hashes in a 50 KB filter: raw bitmap is 51,200
        // bytes; paper's Table 2 says the compressed 1000-key BF is
        // ~3000 bytes. Check we land in that regime.
        let positions: Vec<u32> = (0..2000u32).map(|i| i * 200 + (i % 13)).collect();
        let (m, payload) = encode_positions(&positions, 409_600);
        assert!(
            payload.len() < 4000,
            "compressed {} bytes with m={m}",
            payload.len()
        );
        let back = decode_positions(&payload, m, positions.len()).unwrap();
        assert_eq!(back, positions);
    }
}
