//! Bloom filter diffs.
//!
//! "PlanetP sends diffs of the Bloom filters to save bandwidth" (§7.2):
//! when a peer adds terms to its index, only the newly-set bits need to be
//! gossiped. Since PlanetP filters are append-only between full rebuilds
//! (terms are only added), a diff is the XOR of the old and new bitmaps,
//! and applying it to the old version ORs the new bits in.

use planetp_obs::Histogram;
use serde::{Deserialize, Serialize};

use crate::compressed::CompressedBloom;
use crate::filter::{BloomFilter, BloomParams};
use crate::golomb;

/// A compressed delta between two versions of a peer's Bloom filter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BloomDiff {
    params: BloomParams,
    golomb_parameter: u32,
    num_changed_bits: u32,
    /// keys_inserted of the *new* version, carried so the receiver's copy
    /// stays in sync.
    new_keys_inserted: u64,
    payload: Vec<u8>,
}

impl BloomDiff {
    /// Compute the delta taking `old` to `new`.
    ///
    /// # Panics
    /// Panics if the two filters have different parameters.
    pub fn between(old: &BloomFilter, new: &BloomFilter) -> Self {
        assert_eq!(
            old.params(),
            new.params(),
            "cannot diff filters with different parameters"
        );
        let mut changed = Vec::new();
        for (wi, (a, b)) in old.words().iter().zip(new.words()).enumerate() {
            let mut delta = a ^ b;
            while delta != 0 {
                let bit = delta.trailing_zeros();
                changed.push((wi * 64) as u32 + bit);
                delta &= delta - 1;
            }
        }
        let (m, payload) = golomb::encode_positions(&changed, old.params().num_bits as u32);
        Self {
            params: old.params(),
            golomb_parameter: m,
            num_changed_bits: changed.len() as u32,
            new_keys_inserted: new.keys_inserted(),
            payload,
        }
    }

    /// Compute the delta taking `old` to `new`, recording its wire size
    /// into `sizes` (see [`CompressedBloom::compress_observed`]).
    ///
    /// # Panics
    /// Panics if the two filters have different parameters.
    pub fn between_observed(old: &BloomFilter, new: &BloomFilter, sizes: &Histogram) -> Self {
        let diff = Self::between(old, new);
        sizes.observe(diff.wire_bytes() as u64);
        diff
    }

    /// Apply the delta to `base`, producing the new version.
    ///
    /// Returns `None` if the payload is corrupt or the parameters do not
    /// match `base`.
    pub fn apply(&self, base: &BloomFilter) -> Option<BloomFilter> {
        if base.params() != self.params {
            return None;
        }
        let positions = self.positions()?;
        let mut bits = base.set_bit_positions();
        // XOR semantics: toggle each changed position.
        for p in positions {
            match bits.binary_search(&p) {
                Ok(i) => {
                    bits.remove(i);
                }
                Err(i) => bits.insert(i, p),
            }
        }
        Some(BloomFilter::from_set_bits(
            self.params,
            &bits,
            self.new_keys_inserted,
        ))
    }

    /// Apply the delta directly to a decompressed `base`, in place.
    ///
    /// This is the query-mirror hot path: when a peer's `bloom_version`
    /// advances by a small diff, toggling the few changed bits in the
    /// already-decompressed mirror filter is far cheaper than
    /// re-decompressing the full 50 KB filter from scratch.
    ///
    /// Returns `false` — leaving `base` untouched — if the parameters
    /// mismatch or the payload is corrupt.
    pub fn apply_in_place(&self, base: &mut BloomFilter) -> bool {
        if base.params() != self.params {
            return false;
        }
        let Some(positions) = self.positions() else {
            return false;
        };
        base.toggle_bits(&positions, self.new_keys_inserted);
        true
    }

    /// The filter parameters both versions share.
    pub fn params(&self) -> BloomParams {
        self.params
    }

    /// `keys_inserted` of the new (post-apply) version.
    pub fn new_keys_inserted(&self) -> u64 {
        self.new_keys_inserted
    }

    /// Decode the changed bit positions (sorted ascending). Returns
    /// `None` if the payload is truncated or positions fall outside the
    /// filter's bit space.
    pub fn positions(&self) -> Option<Vec<u32>> {
        let positions = golomb::decode_positions(
            &self.payload,
            self.golomb_parameter,
            self.num_changed_bits as usize,
        )?;
        if positions
            .iter()
            .any(|&p| p as usize >= self.params.num_bits)
        {
            return None;
        }
        Some(positions)
    }

    /// Number of bit positions that differ.
    pub fn num_changed_bits(&self) -> u32 {
        self.num_changed_bits
    }

    /// True if the two versions were identical.
    pub fn is_empty(&self) -> bool {
        self.num_changed_bits == 0
    }

    /// Wire size: compressed payload plus a 24-byte header.
    pub fn wire_bytes(&self) -> usize {
        self.payload.len() + 24
    }
}

/// Convenience: the wire object a peer gossips when its filter changes —
/// either a full compressed filter (first publication) or a diff.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FilterUpdate {
    /// Complete filter, for peers that have no base version.
    Full(CompressedBloom),
    /// Delta against the previous version.
    Delta(BloomDiff),
}

impl FilterUpdate {
    /// Serialized size on the wire.
    pub fn wire_bytes(&self) -> usize {
        match self {
            FilterUpdate::Full(c) => c.wire_bytes(),
            FilterUpdate::Delta(d) => d.wire_bytes(),
        }
    }

    /// Record this update's wire size into `sizes`.
    pub fn observe_size(&self, sizes: &Histogram) {
        sizes.observe(self.wire_bytes() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filter_with(range: std::ops::Range<usize>) -> BloomFilter {
        let mut f = BloomFilter::with_paper_defaults();
        for i in range {
            f.insert(&format!("term-{i}"));
        }
        f
    }

    #[test]
    fn diff_apply_recovers_new_version() {
        let old = filter_with(0..5000);
        let new = filter_with(0..6000);
        let d = BloomDiff::between(&old, &new);
        assert!(!d.is_empty());
        let rebuilt = d.apply(&old).unwrap();
        assert_eq!(rebuilt, new);
    }

    #[test]
    fn diff_of_identical_filters_is_empty() {
        let f = filter_with(0..100);
        let d = BloomDiff::between(&f, &f.clone());
        assert!(d.is_empty());
        assert_eq!(d.apply(&f).unwrap(), f);
    }

    #[test]
    fn diff_smaller_than_full_filter() {
        // Adding 1000 keys to a 20k-key filter should gossip far fewer
        // bytes than re-sending the whole 20k filter.
        let old = filter_with(0..20_000);
        let new = filter_with(0..21_000);
        let d = BloomDiff::between(&old, &new);
        let full = CompressedBloom::compress(&new);
        assert!(
            d.wire_bytes() < full.wire_bytes() / 3,
            "diff {} vs full {}",
            d.wire_bytes(),
            full.wire_bytes()
        );
    }

    #[test]
    fn thousand_key_diff_near_table2_size() {
        // The Fig 2 experiment gossips "a new Bloom filter summarizing
        // 1000 terms ... PlanetP sends diffs" ≈ 3000 bytes in Table 2.
        let old = BloomFilter::with_paper_defaults();
        let new = filter_with(0..1000);
        let d = BloomDiff::between(&old, &new);
        assert!(
            (1000..=4500).contains(&d.wire_bytes()),
            "1000-key diff = {} bytes",
            d.wire_bytes()
        );
    }

    #[test]
    fn xor_semantics_toggle_bits_both_ways() {
        // A rebuilt (shrunk) filter also diffs correctly: bits can clear.
        let old = filter_with(0..1000);
        let new = filter_with(500..1500);
        let d = BloomDiff::between(&old, &new);
        assert_eq!(d.apply(&old).unwrap(), new);
    }

    #[test]
    fn observed_diff_and_update_record_sizes() {
        let sizes = Histogram::detached(planetp_obs::SIZE_BYTES_BUCKETS);
        let old = filter_with(0..100);
        let new = filter_with(0..200);
        let d = BloomDiff::between_observed(&old, &new, &sizes);
        assert_eq!(sizes.count(), 1);
        assert_eq!(sizes.sum(), d.wire_bytes() as u64);
        FilterUpdate::Delta(d.clone()).observe_size(&sizes);
        assert_eq!(sizes.count(), 2);
        assert_eq!(sizes.sum(), 2 * d.wire_bytes() as u64);
    }

    #[test]
    fn apply_in_place_matches_apply() {
        let old = filter_with(0..2000);
        let new = filter_with(0..2500);
        let d = BloomDiff::between(&old, &new);
        let mut mirror = old.clone();
        assert!(d.apply_in_place(&mut mirror));
        assert_eq!(mirror, new);
        assert_eq!(mirror.keys_inserted(), new.keys_inserted());
    }

    #[test]
    fn apply_in_place_rejects_bad_base_without_mutating() {
        let old = filter_with(0..10);
        let new = filter_with(0..20);
        let d = BloomDiff::between(&old, &new);
        let mut wrong = BloomFilter::new(BloomParams {
            num_bits: 128,
            num_hashes: 2,
        });
        let snapshot = wrong.clone();
        assert!(!d.apply_in_place(&mut wrong));
        assert_eq!(wrong, snapshot);
    }

    #[test]
    fn apply_rejects_mismatched_base() {
        let old = filter_with(0..10);
        let new = filter_with(0..20);
        let d = BloomDiff::between(&old, &new);
        let wrong_base = BloomFilter::new(BloomParams {
            num_bits: 128,
            num_hashes: 2,
        });
        assert!(d.apply(&wrong_base).is_none());
    }

    #[test]
    #[should_panic(expected = "different parameters")]
    fn between_rejects_mismatched_params() {
        let a = BloomFilter::new(BloomParams {
            num_bits: 64,
            num_hashes: 2,
        });
        let b = BloomFilter::new(BloomParams {
            num_bits: 128,
            num_hashes: 2,
        });
        let _ = BloomDiff::between(&a, &b);
    }
}
