//! End-to-end retrieval-quality check: the Fig 6 claim, scaled down.
//!
//! TFxIPF with the adaptive stopping heuristic must closely track the
//! centralized TFxIDF baseline on a topic-model collection distributed
//! across peers by a Weibull partition.

use planetp_bloom::BloomParams;
use planetp_corpus::{partition_docs, Collection, CollectionSpec, Partition};
use planetp_index::InvertedIndex;
use planetp_search::{
    average_recall_precision, recall_precision, CentralizedIndex, DistributedSearch, DocRef,
    IndexedPeer, RecallPrecision, SelectionConfig,
};
use std::collections::HashSet;

fn build_community(collection: &Collection, num_peers: usize) -> (Vec<IndexedPeer>, Vec<DocRef>) {
    let assignment = partition_docs(collection.docs.len(), num_peers, Partition::paper(), 7);
    let mut indexes: Vec<InvertedIndex> = (0..num_peers).map(|_| InvertedIndex::new()).collect();
    let mut refs = Vec::with_capacity(collection.docs.len());
    let mut next_local = vec![0u64; num_peers];
    for (doc_id, doc) in collection.docs.iter().enumerate() {
        let peer = assignment[doc_id];
        let local = next_local[peer];
        next_local[peer] += 1;
        indexes[peer].add_document(local, &doc.terms);
        refs.push(DocRef { peer, doc: local });
    }
    let params = BloomParams::paper();
    let peers = indexes
        .into_iter()
        .map(|idx| IndexedPeer::new(idx, params))
        .collect();
    (peers, refs)
}

#[test]
fn tfxipf_tracks_tfxidf() {
    let spec = CollectionSpec {
        name: "quality".into(),
        num_docs: 1500,
        num_topics: 25,
        background_vocab: 8000,
        topic_vocab: 250,
        mean_doc_len: 80,
        topic_fraction: 0.35,
        secondary_leak: 0.08,
        num_queries: 30,
        query_terms: (2, 4),
        zipf_exponent: 1.0,
        seed: 99,
    };
    let collection = Collection::generate(spec);
    let num_peers = 40;
    let (peers, refs) = build_community(&collection, num_peers);
    let idx_list: Vec<&InvertedIndex> = peers.iter().map(|p| &p.index).collect();
    let mut central = CentralizedIndex::default();
    for (pno, idx) in idx_list.iter().enumerate() {
        central.add_peer(pno, idx);
    }
    let search = DistributedSearch::new(&peers);

    let k = 20;
    let mut idf_scores: Vec<RecallPrecision> = Vec::new();
    let mut ipf_scores: Vec<RecallPrecision> = Vec::new();
    let mut contacted_total = 0usize;
    for q in &collection.queries {
        if q.relevant.is_empty() {
            continue;
        }
        let relevant: HashSet<DocRef> = q.relevant.iter().map(|&d| refs[d]).collect();

        let idf_top = central.top_k(&q.terms, k);
        let idf_docs: Vec<DocRef> = idf_top.iter().map(|s| s.doc).collect();
        idf_scores.push(recall_precision(&idf_docs, &relevant));

        let out = search.search(&q.terms, SelectionConfig::paper(k));
        let ipf_docs: Vec<DocRef> = out.results.iter().map(|s| s.doc).collect();
        ipf_scores.push(recall_precision(&ipf_docs, &relevant));
        contacted_total += out.peers_contacted;
    }
    let idf = average_recall_precision(&idf_scores);
    let ipf = average_recall_precision(&ipf_scores);
    eprintln!(
        "IDF R={:.3} P={:.3} | IPF R={:.3} P={:.3} | avg contacted {:.1}/{num_peers}",
        idf.recall,
        idf.precision,
        ipf.recall,
        ipf.precision,
        contacted_total as f64 / idf_scores.len() as f64,
    );
    // The paper's claim: TFxIPF tracks TFxIDF, "slightly worse than
    // TFxIDF for k < 150 but catches up for larger k's" (§7.3). At
    // k=20 we allow the small-k approximation loss; the convergence at
    // large k is asserted below.
    assert!(idf.recall > 0.3, "baseline too weak to compare: {idf:?}");
    assert!(
        ipf.recall >= idf.recall - 0.12,
        "IPF recall {:.3} lags IDF {:.3} by more than 0.12",
        ipf.recall,
        idf.recall
    );
    assert!(
        ipf.precision >= idf.precision - 0.25,
        "IPF precision {:.3} lags IDF {:.3} by more than 0.25",
        ipf.precision,
        idf.precision
    );
    // Large k: the two rankers converge (paper: TFxIPF "catches up").
    let k_large = 150;
    let mut idf_l = Vec::new();
    let mut ipf_l = Vec::new();
    for q in &collection.queries {
        if q.relevant.is_empty() {
            continue;
        }
        let relevant: HashSet<DocRef> = q.relevant.iter().map(|&d| refs[d]).collect();
        let top = central.top_k(&q.terms, k_large);
        let docs: Vec<DocRef> = top.iter().map(|s| s.doc).collect();
        idf_l.push(recall_precision(&docs, &relevant));
        let out = search.search(&q.terms, SelectionConfig::paper(k_large));
        let docs: Vec<DocRef> = out.results.iter().map(|s| s.doc).collect();
        ipf_l.push(recall_precision(&docs, &relevant));
    }
    let idf_l = average_recall_precision(&idf_l);
    let ipf_l = average_recall_precision(&ipf_l);
    assert!(
        ipf_l.recall >= idf_l.recall - 0.03,
        "at k={k_large} IPF recall {:.3} must have caught up to IDF {:.3}",
        ipf_l.recall,
        idf_l.recall
    );
    // And it must not contact everyone.
    let avg_contacted = contacted_total as f64 / idf_scores.len() as f64;
    assert!(
        avg_contacted < num_peers as f64 * 0.8,
        "adaptive stop failed: {avg_contacted} of {num_peers} peers"
    );
}
