//! Property-based tests of the synthetic collection generator.

use planetp_corpus::{partition_docs, peer_loads, Collection, CollectionSpec, Partition};
use proptest::prelude::*;

fn spec_strategy() -> impl Strategy<Value = CollectionSpec> {
    (
        10usize..120,   // docs
        1usize..8,      // topics
        100usize..2000, // background vocab
        10usize..200,   // topic vocab
        15usize..80,    // mean doc len
        0u64..1000,     // seed
    )
        .prop_map(|(docs, topics, bg, tv, len, seed)| CollectionSpec {
            name: "prop".into(),
            num_docs: docs,
            num_topics: topics,
            background_vocab: bg,
            topic_vocab: tv,
            mean_doc_len: len,
            topic_fraction: 0.35,
            secondary_leak: 0.08,
            num_queries: 5,
            query_terms: (1, 3),
            zipf_exponent: 1.0,
            seed,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Generated collections satisfy their own invariants: counts match
    /// the spec, topics are in range, queries draw from their topic's
    /// vocabulary, and relevance judgments are sound and sorted.
    #[test]
    fn collection_invariants(spec in spec_strategy()) {
        let c = Collection::generate(spec.clone());
        prop_assert_eq!(c.docs.len(), spec.num_docs);
        prop_assert_eq!(c.queries.len(), spec.num_queries);
        for d in &c.docs {
            prop_assert!(d.primary_topic < spec.num_topics);
            prop_assert!(d.secondary_topic < spec.num_topics);
            prop_assert!(!d.terms.is_empty());
        }
        for q in &c.queries {
            prop_assert!(q.topic < spec.num_topics);
            let prefix = format!("t{}", q.topic);
            for t in &q.terms {
                prop_assert!(
                    t.starts_with(&prefix),
                    "query term {t} not from topic {}", q.topic
                );
            }
            prop_assert!(q.relevant.windows(2).all(|w| w[0] < w[1]));
            for &d in &q.relevant {
                prop_assert!(d < c.docs.len());
                prop_assert_eq!(c.docs[d].primary_topic, q.topic);
                prop_assert!(c.docs[d].terms.iter().any(|t| q.terms.contains(t)));
            }
        }
    }

    /// Same spec, same collection — byte for byte.
    #[test]
    fn generation_deterministic(spec in spec_strategy()) {
        let a = Collection::generate(spec.clone());
        let b = Collection::generate(spec);
        prop_assert_eq!(a.docs.len(), b.docs.len());
        for (da, db) in a.docs.iter().zip(&b.docs) {
            prop_assert_eq!(&da.terms, &db.terms);
        }
        for (qa, qb) in a.queries.iter().zip(&b.queries) {
            prop_assert_eq!(&qa.terms, &qb.terms);
            prop_assert_eq!(&qa.relevant, &qb.relevant);
        }
    }

    /// Partitioning conserves documents and stays within peer bounds,
    /// for both distributions and any peer count.
    #[test]
    fn partition_conserves(
        num_docs in 0usize..2000,
        num_peers in 1usize..100,
        seed in any::<u64>(),
        uniform in any::<bool>(),
    ) {
        let part = if uniform { Partition::Uniform } else { Partition::paper() };
        let a = partition_docs(num_docs, num_peers, part, seed);
        prop_assert_eq!(a.len(), num_docs);
        prop_assert!(a.iter().all(|&p| p < num_peers));
        let loads = peer_loads(&a, num_peers);
        prop_assert_eq!(loads.iter().sum::<usize>(), num_docs);
    }
}
