//! Synthetic benchmark collections for PlanetP's retrieval experiments.
//!
//! The paper evaluates search quality on five collections — CACM, MED,
//! CRAN, CISI (Smart) and AP89 (TREC) — each with queries and human
//! relevance judgments (Table 3). Those corpora are licensed data we
//! cannot ship, so this crate generates *synthetic equivalents* from a
//! topic model:
//!
//! - a Zipfian background vocabulary shared by all documents;
//! - per-topic vocabularies of discriminative terms, also Zipfian;
//! - documents drawing a configurable fraction of their terms from
//!   their primary topic and the rest from the background;
//! - queries built from discriminative terms of one topic;
//! - relevance judgments: documents of the query's topic that share at
//!   least one query term.
//!
//! The paper's comparisons are *relative* (TFxIPF vs TFxIDF on the same
//! collection), and the topic model gives both rankers the same signal
//! structure — term frequency and term rarity correlate with relevance
//! — so the relative shapes of Fig 6 are preserved. See DESIGN.md for
//! the substitution argument.

pub mod collection;
pub mod partition;
pub mod specs;
pub mod words;

pub use collection::{Collection, CollectionSpec, Document, Query};
pub use partition::{partition_docs, peer_loads, Partition};
pub use specs::{
    ap89_like, ap89_like_scaled, cacm_like, cisi_like, cran_like, med_like, table3_specs,
};
