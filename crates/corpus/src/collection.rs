//! Collection generation from the topic model.

use crate::words::{background_word, topic_word};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, LogNormal, Zipf};
use serde::{Deserialize, Serialize};

/// Parameters of a synthetic collection.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CollectionSpec {
    /// Collection name (e.g. "AP89-like").
    pub name: String,
    /// Number of documents.
    pub num_docs: usize,
    /// Number of topics.
    pub num_topics: usize,
    /// Background vocabulary size.
    pub background_vocab: usize,
    /// Discriminative vocabulary size per topic.
    pub topic_vocab: usize,
    /// Mean document length in terms.
    pub mean_doc_len: usize,
    /// Fraction of a document's terms drawn from its topics (the rest
    /// come from the background vocabulary).
    pub topic_fraction: f64,
    /// Probability that a topical term draws from the document's
    /// *secondary* topic instead of its primary one. This cross-topic
    /// leakage is what makes retrieval imperfect: documents of other
    /// topics contain query terms without being relevant, so precision
    /// falls with k as in real collections.
    pub secondary_leak: f64,
    /// Number of queries to generate.
    pub num_queries: usize,
    /// Terms per query (min, max inclusive).
    pub query_terms: (usize, usize),
    /// Zipf exponent for both vocabularies.
    pub zipf_exponent: f64,
    /// Generation seed.
    pub seed: u64,
}

/// A generated document: a bag of (already analyzed) terms.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Document {
    /// The topic most of its discriminative terms come from.
    pub primary_topic: usize,
    /// A second topic a minority of terms leak from.
    pub secondary_topic: usize,
    /// The document's terms, in generation order.
    pub terms: Vec<String>,
}

impl Document {
    /// Render the document as text (for examples and the XML pipeline).
    pub fn text(&self) -> String {
        self.terms.join(" ")
    }
}

/// A generated query with its relevance judgments.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Query {
    /// The topic the query asks about.
    pub topic: usize,
    /// Query terms.
    pub terms: Vec<String>,
    /// Relevant document ids (indexes into `Collection::docs`), sorted.
    pub relevant: Vec<usize>,
}

/// A complete synthetic collection.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Collection {
    /// The spec it was generated from.
    pub spec: CollectionSpec,
    /// Documents; the document id is the index.
    pub docs: Vec<Document>,
    /// Queries with relevance judgments.
    pub queries: Vec<Query>,
}

impl Collection {
    /// Generate a collection from its spec. Deterministic in the seed.
    pub fn generate(spec: CollectionSpec) -> Self {
        assert!(spec.num_topics > 0, "need at least one topic");
        assert!(spec.background_vocab > 0 && spec.topic_vocab > 0);
        assert!((0.0..=1.0).contains(&spec.topic_fraction));
        assert!((0.0..=1.0).contains(&spec.secondary_leak));
        let mut rng = SmallRng::seed_from_u64(spec.seed);
        let bg_zipf =
            Zipf::new(spec.background_vocab as f64, spec.zipf_exponent).expect("valid Zipf");
        let topic_zipf =
            Zipf::new(spec.topic_vocab as f64, spec.zipf_exponent).expect("valid Zipf");
        // Document lengths: lognormal around the mean, clamped.
        let len_dist =
            LogNormal::new((spec.mean_doc_len as f64).ln(), 0.4).expect("valid LogNormal");

        let mut docs = Vec::with_capacity(spec.num_docs);
        for _ in 0..spec.num_docs {
            let primary_topic = rng.random_range(0..spec.num_topics);
            let secondary_topic = rng.random_range(0..spec.num_topics);
            let len = (len_dist.sample(&mut rng) as usize).clamp(10, 2000);
            let mut terms = Vec::with_capacity(len);
            for _ in 0..len {
                if rng.random_bool(spec.topic_fraction) {
                    let rank = topic_zipf.sample(&mut rng) as u64;
                    let topic = if rng.random_bool(spec.secondary_leak) {
                        secondary_topic
                    } else {
                        primary_topic
                    };
                    terms.push(topic_word(topic, rank));
                } else {
                    let rank = bg_zipf.sample(&mut rng) as u64;
                    terms.push(background_word(rank));
                }
            }
            docs.push(Document {
                primary_topic,
                secondary_topic,
                terms,
            });
        }

        let mut queries = Vec::with_capacity(spec.num_queries);
        for _ in 0..spec.num_queries {
            let topic = rng.random_range(0..spec.num_topics);
            let n_terms = rng.random_range(spec.query_terms.0..=spec.query_terms.1);
            let mut terms = Vec::with_capacity(n_terms);
            while terms.len() < n_terms {
                let rank = topic_zipf.sample(&mut rng) as u64;
                let w = topic_word(topic, rank);
                if !terms.contains(&w) {
                    terms.push(w);
                }
            }
            let relevant: Vec<usize> = docs
                .iter()
                .enumerate()
                .filter(|(_, d)| {
                    d.primary_topic == topic && d.terms.iter().any(|t| terms.contains(t))
                })
                .map(|(i, _)| i)
                .collect();
            queries.push(Query {
                topic,
                terms,
                relevant,
            });
        }
        Self {
            spec,
            docs,
            queries,
        }
    }

    /// Vocabulary size actually used by the documents.
    pub fn vocabulary_size(&self) -> usize {
        let mut v: std::collections::HashSet<&str> = std::collections::HashSet::new();
        for d in &self.docs {
            for t in &d.terms {
                v.insert(t);
            }
        }
        v.len()
    }

    /// Approximate collection size in megabytes (terms + separators, as
    /// if stored as text).
    pub fn size_mb(&self) -> f64 {
        let bytes: usize = self
            .docs
            .iter()
            .map(|d| d.terms.iter().map(|t| t.len() + 1).sum::<usize>())
            .sum();
        bytes as f64 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> CollectionSpec {
        CollectionSpec {
            name: "tiny".into(),
            num_docs: 200,
            num_topics: 10,
            background_vocab: 2000,
            topic_vocab: 100,
            mean_doc_len: 60,
            topic_fraction: 0.35,
            secondary_leak: 0.08,
            num_queries: 20,
            query_terms: (2, 4),
            zipf_exponent: 1.0,
            seed: 42,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Collection::generate(small_spec());
        let b = Collection::generate(small_spec());
        assert_eq!(a.docs.len(), b.docs.len());
        assert_eq!(a.docs[0].terms, b.docs[0].terms);
        assert_eq!(a.queries[3].terms, b.queries[3].terms);
        assert_eq!(a.queries[3].relevant, b.queries[3].relevant);
    }

    #[test]
    fn shapes_match_spec() {
        let c = Collection::generate(small_spec());
        assert_eq!(c.docs.len(), 200);
        assert_eq!(c.queries.len(), 20);
        for q in &c.queries {
            assert!((2..=4).contains(&q.terms.len()));
        }
        for d in &c.docs {
            assert!(d.terms.len() >= 10);
        }
    }

    #[test]
    fn queries_have_nonempty_relevance_mostly() {
        let c = Collection::generate(small_spec());
        let with_rel = c.queries.iter().filter(|q| !q.relevant.is_empty()).count();
        assert!(with_rel >= 18, "{with_rel}/20 queries have relevant docs");
    }

    #[test]
    fn relevant_docs_share_topic_and_terms() {
        let c = Collection::generate(small_spec());
        for q in &c.queries {
            for &d in &q.relevant {
                let doc = &c.docs[d];
                assert_eq!(doc.primary_topic, q.topic);
                assert!(doc.terms.iter().any(|t| q.terms.contains(t)));
            }
        }
    }

    #[test]
    fn relevance_lists_sorted() {
        let c = Collection::generate(small_spec());
        for q in &c.queries {
            assert!(q.relevant.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn zipf_makes_head_terms_frequent() {
        let c = Collection::generate(small_spec());
        let mut counts: std::collections::HashMap<&str, usize> = Default::default();
        for d in &c.docs {
            for t in &d.terms {
                *counts.entry(t).or_insert(0) += 1;
            }
        }
        let max = *counts.values().max().unwrap();
        let total: usize = counts.values().sum();
        // The most frequent term should dominate (harmonic head).
        assert!(max * 20 > total / 10, "head term too flat: {max}/{total}");
    }

    #[test]
    fn stats_are_sane() {
        let c = Collection::generate(small_spec());
        assert!(c.vocabulary_size() > 100);
        assert!(c.size_mb() > 0.0);
    }
}
