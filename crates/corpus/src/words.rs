//! Deterministic pseudo-word generation.
//!
//! Vocabulary entries are synthesized from syllables so documents look
//! like text (useful in examples) while remaining deterministic
//! functions of their vocabulary index. Background and topic words use
//! disjoint prefixes so they can never collide.

/// Syllable inventory; 24 entries so indexes mix well.
const SYLLABLES: &[&str] = &[
    "ba", "ce", "di", "fo", "gu", "ha", "je", "ki", "lo", "mu", "na", "pe", "qui", "ro", "su",
    "ta", "ve", "wi", "xo", "yu", "za", "bren", "dor", "mik",
];

/// Deterministic pseudo-word for a vocabulary index.
pub fn synth_word(mut i: u64) -> String {
    let mut w = String::new();
    loop {
        w.push_str(SYLLABLES[(i % SYLLABLES.len() as u64) as usize]);
        i /= SYLLABLES.len() as u64;
        if i == 0 {
            break;
        }
    }
    w
}

/// The `rank`-th background-vocabulary word.
pub fn background_word(rank: u64) -> String {
    format!("bg{}", synth_word(rank))
}

/// The `rank`-th discriminative word of a topic.
pub fn topic_word(topic: usize, rank: u64) -> String {
    format!("t{topic}{}", synth_word(rank))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_are_deterministic() {
        assert_eq!(synth_word(12345), synth_word(12345));
        assert_eq!(background_word(7), background_word(7));
    }

    #[test]
    fn distinct_indexes_distinct_words() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000 {
            assert!(seen.insert(synth_word(i)), "collision at {i}");
        }
    }

    #[test]
    fn background_and_topic_namespaces_disjoint() {
        for i in 0..100 {
            let b = background_word(i);
            for t in 0..5 {
                assert_ne!(b, topic_word(t, i));
            }
        }
    }

    #[test]
    fn topic_namespaces_disjoint_from_each_other() {
        // t1 + word(0) = "t1ba" vs t11 + ... prefixes could collide:
        // topic 1 rank X vs topic 11 rank Y iff "1"+w(X) == "11"+w(Y),
        // i.e. w(X) starts with "1" — impossible, syllables are alphabetic.
        let w1: std::collections::HashSet<String> = (0..1000).map(|r| topic_word(1, r)).collect();
        for r in 0..1000 {
            assert!(!w1.contains(&topic_word(11, r)));
        }
    }
}
