//! Specs matched to the paper's five collections (Table 3).
//!
//! | Trace | Queries | Documents | Words   | Size (MB) |
//! |-------|---------|-----------|---------|-----------|
//! | CACM  | 52      | 3204      | 75,493  | 2.1       |
//! | MED   | 30      | 1033      | 83,451  | 1.0       |
//! | CRAN  | 152     | 1400      | 117,718 | 1.6       |
//! | CISI  | 76      | 1460      | 84,957  | 2.4       |
//! | AP89  | 97      | 84,678    | 129,603 | 266.0     |
//!
//! The synthetic specs match document and query counts exactly and the
//! vocabulary scale approximately. AP89 generation at full size takes a
//! while and a few GB of strings; [`ap89_like_scaled`] provides the
//! runtime-friendly version the benches default to.

use crate::collection::CollectionSpec;

#[allow(clippy::too_many_arguments)] // private constructor mirroring Table 3's columns
fn spec(
    name: &str,
    num_docs: usize,
    num_queries: usize,
    num_topics: usize,
    background_vocab: usize,
    topic_vocab: usize,
    mean_doc_len: usize,
    seed: u64,
) -> CollectionSpec {
    CollectionSpec {
        name: name.into(),
        num_docs,
        num_topics,
        background_vocab,
        topic_vocab,
        mean_doc_len,
        topic_fraction: 0.35,
        secondary_leak: 0.08,
        num_queries,
        query_terms: (2, 5),
        zipf_exponent: 1.0,
        seed,
    }
}

/// CACM-like: 3204 abstracts, 52 queries.
pub fn cacm_like() -> CollectionSpec {
    spec("CACM-like", 3204, 52, 40, 20_000, 400, 90, 0xCAC0)
}

/// MED-like: 1033 abstracts, 30 queries.
pub fn med_like() -> CollectionSpec {
    spec("MED-like", 1033, 30, 25, 18_000, 400, 130, 0x3ED0)
}

/// CRAN-like: 1400 abstracts, 152 queries.
pub fn cran_like() -> CollectionSpec {
    spec("CRAN-like", 1400, 152, 30, 25_000, 500, 150, 0xC4A0)
}

/// CISI-like: 1460 abstracts, 76 queries.
pub fn cisi_like() -> CollectionSpec {
    spec("CISI-like", 1460, 76, 30, 20_000, 400, 220, 0xC151)
}

/// AP89-like at full Table 3 scale: 84,678 articles, 97 queries.
pub fn ap89_like() -> CollectionSpec {
    spec("AP89-like", 84_678, 97, 150, 60_000, 450, 430, 0xA890)
}

/// AP89-like scaled down for fast regeneration: same topical structure,
/// `1/scale` of the documents.
pub fn ap89_like_scaled(scale: usize) -> CollectionSpec {
    let mut s = ap89_like();
    s.name = format!("AP89-like/{scale}");
    s.num_docs /= scale.max(1);
    s
}

/// All five Table 3 specs in paper order.
pub fn table3_specs() -> Vec<CollectionSpec> {
    vec![
        cacm_like(),
        med_like(),
        cran_like(),
        cisi_like(),
        ap89_like(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::Collection;

    #[test]
    fn counts_match_table3() {
        let specs = table3_specs();
        let expected = [
            ("CACM-like", 3204, 52),
            ("MED-like", 1033, 30),
            ("CRAN-like", 1400, 152),
            ("CISI-like", 1460, 76),
            ("AP89-like", 84_678, 97),
        ];
        for (s, (name, docs, queries)) in specs.iter().zip(expected) {
            assert_eq!(s.name, name);
            assert_eq!(s.num_docs, docs);
            assert_eq!(s.num_queries, queries);
        }
    }

    #[test]
    fn small_collections_generate_with_table3_size_scale() {
        // MED-like is the smallest: generate it fully and check size is
        // within the right order of magnitude (Table 3 says 1.0 MB).
        let c = Collection::generate(med_like());
        assert_eq!(c.docs.len(), 1033);
        let mb = c.size_mb();
        assert!((0.3..6.0).contains(&mb), "{mb} MB");
    }

    #[test]
    fn scaled_ap89_shrinks() {
        let s = ap89_like_scaled(10);
        assert_eq!(s.num_docs, 8467);
        assert_eq!(s.num_queries, 97);
    }
}
