//! Distributing documents across peers.
//!
//! "The distribution of documents on our simulation follows a Weibull
//! function, which is motivated by observing current P2P file-sharing
//! communities" (§7.3) — a few peers share many documents, most share
//! few. The uniform alternative is also provided (the companion TR
//! studies both).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Weibull};
use serde::{Deserialize, Serialize};

/// How documents are spread over peers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Partition {
    /// Peer share sizes proportional to Weibull(shape) samples.
    Weibull {
        /// Weibull shape parameter; < 1 gives the heavy skew observed
        /// in file-sharing communities.
        shape: f64,
    },
    /// Every document lands on a uniformly random peer.
    Uniform,
}

impl Partition {
    /// The paper's configuration.
    pub fn paper() -> Self {
        Partition::Weibull { shape: 0.7 }
    }
}

/// Assign each document to a peer. Returns `assignment[doc] = peer`.
/// Every peer index is in `0..num_peers`; peers may end up empty under
/// heavy skew.
pub fn partition_docs(
    num_docs: usize,
    num_peers: usize,
    partition: Partition,
    seed: u64,
) -> Vec<usize> {
    assert!(num_peers > 0, "need at least one peer");
    let mut rng = SmallRng::seed_from_u64(seed);
    match partition {
        Partition::Uniform => (0..num_docs)
            .map(|_| rng.random_range(0..num_peers))
            .collect(),
        Partition::Weibull { shape } => {
            let w = Weibull::new(1.0, shape).expect("valid Weibull");
            let weights: Vec<f64> = (0..num_peers)
                .map(|_| w.sample(&mut rng).max(1e-9))
                .collect();
            let total: f64 = weights.iter().sum();
            // Cumulative distribution for roulette selection.
            let mut cdf = Vec::with_capacity(num_peers);
            let mut acc = 0.0;
            for &x in &weights {
                acc += x / total;
                cdf.push(acc);
            }
            (0..num_docs)
                .map(|_| {
                    let u: f64 = rng.random();
                    cdf.partition_point(|&c| c < u).min(num_peers - 1)
                })
                .collect()
        }
    }
}

/// Per-peer document counts for an assignment.
pub fn peer_loads(assignment: &[usize], num_peers: usize) -> Vec<usize> {
    let mut loads = vec![0; num_peers];
    for &p in assignment {
        loads[p] += 1;
    }
    loads
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_docs_assigned_in_range() {
        for part in [Partition::Uniform, Partition::paper()] {
            let a = partition_docs(5000, 40, part, 1);
            assert_eq!(a.len(), 5000);
            assert!(a.iter().all(|&p| p < 40));
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = partition_docs(1000, 20, Partition::paper(), 9);
        let b = partition_docs(1000, 20, Partition::paper(), 9);
        assert_eq!(a, b);
        let c = partition_docs(1000, 20, Partition::paper(), 10);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn weibull_is_more_skewed_than_uniform() {
        let n_docs = 20_000;
        let n_peers = 100;
        let gini = |loads: &[usize]| {
            let mut l: Vec<f64> = loads.iter().map(|&x| x as f64).collect();
            l.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let n = l.len() as f64;
            let sum: f64 = l.iter().sum();
            if sum == 0.0 {
                return 0.0;
            }
            let weighted: f64 = l
                .iter()
                .enumerate()
                .map(|(i, x)| (i as f64 + 1.0) * x)
                .sum();
            (2.0 * weighted) / (n * sum) - (n + 1.0) / n
        };
        let u = peer_loads(
            &partition_docs(n_docs, n_peers, Partition::Uniform, 3),
            n_peers,
        );
        let w = peer_loads(
            &partition_docs(n_docs, n_peers, Partition::paper(), 3),
            n_peers,
        );
        assert!(
            gini(&w) > gini(&u) + 0.1,
            "weibull gini {} vs uniform {}",
            gini(&w),
            gini(&u)
        );
        assert_eq!(u.iter().sum::<usize>(), n_docs);
        assert_eq!(w.iter().sum::<usize>(), n_docs);
    }

    #[test]
    #[should_panic(expected = "at least one peer")]
    fn zero_peers_rejected() {
        partition_docs(10, 0, Partition::Uniform, 0);
    }
}
