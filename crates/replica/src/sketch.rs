//! Space-saving frequent-items sketch with exponential decay.
//!
//! The hotness signal behind replication: each node observes the
//! stream of documents it serves in query responses and keeps the
//! top-`capacity` items in bounded memory, following the space-saving
//! scheme used for popularity mining in unstructured P2P networks
//! (Metwally et al. via "Mining frequent items in unstructured P2P
//! networks", PAPERS.md). When the sketch is full, a new item evicts
//! the current minimum and inherits its count as over-estimation
//! error; `estimate` is therefore an upper bound whose slack is
//! tracked per slot. A periodic [`SpaceSaving::decay`] halves every
//! count so popularity from hours ago cannot pin a replica forever.

use std::collections::HashMap;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Slot {
    count: u64,
    /// Over-estimation inherited from the evicted minimum; the true
    /// frequency lies in `[count - err, count]`.
    err: u64,
}

/// Bounded-memory frequent-items counter over `u64` keys (content
/// hashes here, but the sketch is key-agnostic).
#[derive(Debug, Clone)]
pub struct SpaceSaving {
    capacity: usize,
    slots: HashMap<u64, Slot>,
}

impl SpaceSaving {
    /// `capacity` is the number of tracked items; memory is O(capacity)
    /// regardless of stream length. A capacity of zero is clamped to
    /// one so `observe` always has a slot to work with.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            slots: HashMap::with_capacity(capacity),
        }
    }

    /// Record one occurrence of `key`.
    pub fn observe(&mut self, key: u64) {
        if let Some(s) = self.slots.get_mut(&key) {
            s.count += 1;
            return;
        }
        if self.slots.len() < self.capacity {
            self.slots.insert(key, Slot { count: 1, err: 0 });
            return;
        }
        // Evict the minimum-count slot (ties broken by smallest key so
        // replays are deterministic) and inherit its count as error.
        let (&victim, &slot) = self
            .slots
            .iter()
            .min_by_key(|(k, s)| (s.count, **k))
            .expect("capacity >= 1, sketch full");
        self.slots.remove(&victim);
        self.slots.insert(
            key,
            Slot {
                count: slot.count + 1,
                err: slot.count,
            },
        );
    }

    /// Upper-bound frequency estimate for `key`; zero if untracked.
    pub fn estimate(&self, key: u64) -> u64 {
        self.slots.get(&key).map_or(0, |s| s.count)
    }

    /// Guaranteed (lower-bound) frequency for `key`: `count - err`.
    pub fn guaranteed(&self, key: u64) -> u64 {
        self.slots.get(&key).map_or(0, |s| s.count - s.err)
    }

    /// Exponential aging: halve every count, dropping slots that reach
    /// zero. Called on a coarse timer so hotness tracks the recent
    /// query mix instead of all-time popularity.
    pub fn decay(&mut self) {
        self.slots.retain(|_, s| {
            s.count /= 2;
            s.err /= 2;
            s.count > 0
        });
    }

    /// Number of tracked items.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Tracked items as `(key, estimate)`, unordered.
    pub fn items(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.slots.iter().map(|(&k, s)| (k, s.count))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_exact_counts_under_capacity() {
        let mut s = SpaceSaving::new(8);
        for _ in 0..5 {
            s.observe(1);
        }
        s.observe(2);
        assert_eq!(s.estimate(1), 5);
        assert_eq!(s.guaranteed(1), 5);
        assert_eq!(s.estimate(2), 1);
        assert_eq!(s.estimate(99), 0);
    }

    #[test]
    fn eviction_keeps_heavy_hitters_and_bounds_error() {
        let mut s = SpaceSaving::new(4);
        // Two heavy hitters plus a long tail of singletons.
        for i in 0..100u64 {
            s.observe(1);
            s.observe(2);
            s.observe(1000 + i);
        }
        assert_eq!(s.len(), 4);
        // Heavy hitters never evicted: estimates exact.
        assert_eq!(s.estimate(1), 100);
        assert_eq!(s.estimate(2), 100);
        // Tail slots carry inherited error; guaranteed count stays
        // truthful (each tail key truly appeared once).
        for (k, _) in s.items().filter(|&(k, _)| k >= 1000).collect::<Vec<_>>() {
            assert!(s.guaranteed(k) <= 1, "tail key {k} over-guaranteed");
            assert!(s.estimate(k) >= 1);
        }
    }

    #[test]
    fn decay_halves_and_drops_cold_items() {
        let mut s = SpaceSaving::new(8);
        for _ in 0..4 {
            s.observe(7);
        }
        s.observe(8);
        s.decay();
        assert_eq!(s.estimate(7), 2);
        assert_eq!(s.estimate(8), 0, "singleton decays out");
        s.decay();
        s.decay();
        assert!(s.is_empty());
    }

    #[test]
    fn zero_capacity_still_works() {
        let mut s = SpaceSaving::new(0);
        s.observe(3);
        assert_eq!(s.estimate(3), 1);
    }
}
