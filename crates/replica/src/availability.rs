//! Per-peer availability estimation from gossiped directory status.
//!
//! Every gossip tick the live runtime samples the directory: each peer
//! is either `Online` or `Offline` right now. Feeding those samples
//! into an EWMA per peer yields the long-run fraction of time the peer
//! is reachable — exactly the `avail_holder` term in the placement
//! math `1 − Π(1 − avail_holder)`. No extra protocol: the directory
//! status history *is* the availability trace, we just integrate it.

use planetp_gossip::PeerId;
use std::collections::HashMap;

/// EWMA availability estimator over binary online/offline samples.
#[derive(Debug, Clone)]
pub struct AvailabilityTracker {
    alpha: f64,
    prior: f64,
    est: HashMap<PeerId, f64>,
}

impl AvailabilityTracker {
    /// `alpha` is the EWMA weight of the newest sample (clamped to
    /// (0, 1]); `prior` is the estimate reported for peers with no
    /// samples yet (clamped to [0, 1]). A prior of ~0.5 keeps unknown
    /// peers eligible as replica targets without treating them as
    /// reliable as proven always-online members.
    pub fn new(alpha: f64, prior: f64) -> Self {
        Self {
            alpha: alpha.clamp(f64::MIN_POSITIVE, 1.0),
            prior: prior.clamp(0.0, 1.0),
            est: HashMap::new(),
        }
    }

    /// Fold one directory sample for `peer` into its estimate.
    pub fn observe(&mut self, peer: PeerId, online: bool) {
        let sample = if online { 1.0 } else { 0.0 };
        let e = self.est.entry(peer).or_insert(self.prior);
        *e = (1.0 - self.alpha) * *e + self.alpha * sample;
    }

    /// Current availability estimate in [0, 1]; the prior if the peer
    /// has never been sampled.
    pub fn estimate(&self, peer: PeerId) -> f64 {
        self.est.get(&peer).copied().unwrap_or(self.prior)
    }

    /// Drop estimates for peers no longer in the directory.
    pub fn retain(&mut self, mut keep: impl FnMut(PeerId) -> bool) {
        self.est.retain(|&p, _| keep(p));
    }

    /// Number of peers with at least one sample.
    pub fn len(&self) -> usize {
        self.est.len()
    }

    pub fn is_empty(&self) -> bool {
        self.est.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_toward_duty_cycle() {
        let mut t = AvailabilityTracker::new(0.1, 0.5);
        // 30% duty cycle: 3 online samples out of every 10.
        for round in 0..400 {
            t.observe(1, round % 10 < 3);
        }
        let e = t.estimate(1);
        assert!((0.15..=0.45).contains(&e), "estimate {e} far from 0.3");
    }

    #[test]
    fn unknown_peer_gets_prior_and_retain_forgets() {
        let mut t = AvailabilityTracker::new(0.2, 0.5);
        assert_eq!(t.estimate(9), 0.5);
        t.observe(1, true);
        assert!(t.estimate(1) > 0.5);
        t.retain(|p| p != 1);
        assert_eq!(t.estimate(1), 0.5);
        assert!(t.is_empty());
    }

    #[test]
    fn always_online_approaches_one() {
        let mut t = AvailabilityTracker::new(0.2, 0.5);
        for _ in 0..50 {
            t.observe(2, true);
        }
        assert!(t.estimate(2) > 0.99);
    }
}
