//! Pure placement math, shared by the live engine and the simulator.
//!
//! A document held by peers with availabilities `a_1..a_k` is
//! reachable with probability `1 − Π(1 − a_i)` (holders fail
//! independently under the §7 churn model — on/off cycles are drawn
//! per peer). Replication's job is to lift that estimate above a
//! target by adding holders, spending the fewest copies by preferring
//! the most-available peers with spare capacity; eviction under
//! capacity pressure drops the copy contributing the least
//! hotness-weighted availability.

use planetp_gossip::PeerId;

/// `1 − Π(1 − a_i)` over the holders' availability estimates.
///
/// Out-of-range inputs are clamped; an empty iterator yields 0 (a
/// document nobody holds is never reachable).
pub fn estimated_availability(holders: impl IntoIterator<Item = f64>) -> f64 {
    let miss: f64 = holders
        .into_iter()
        .map(|a| 1.0 - a.clamp(0.0, 1.0))
        .product::<f64>()
        .min(1.0);
    1.0 - miss
}

/// A prospective replica target as seen in the gossiped directory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    pub peer: PeerId,
    /// Effective availability: min(local EWMA observation, the peer's
    /// own gossiped claim).
    pub availability: f64,
    /// Spare replica capacity from the peer's [`crate::ReplicaAd`].
    pub spare_bytes: u64,
}

/// Choose peers to push one document of `doc_bytes` to, until its
/// estimated availability reaches `target` or `max_new` copies have
/// been planned. `current` is the availability already provided by the
/// home peer plus existing holders. Candidates are consumed
/// best-available first (ties broken by peer id for determinism);
/// peers without room for the document are skipped.
pub fn pick_targets(
    current: f64,
    target: f64,
    doc_bytes: u64,
    candidates: &[Candidate],
    max_new: usize,
) -> Vec<PeerId> {
    let mut picked = Vec::new();
    if current >= target || max_new == 0 {
        return picked;
    }
    let mut order: Vec<&Candidate> = candidates
        .iter()
        .filter(|c| c.spare_bytes >= doc_bytes)
        .collect();
    order.sort_by(|a, b| {
        b.availability
            .partial_cmp(&a.availability)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.peer.cmp(&b.peer))
    });
    let mut est = current.clamp(0.0, 1.0);
    for c in order {
        if est >= target || picked.len() >= max_new {
            break;
        }
        picked.push(c.peer);
        est = 1.0 - (1.0 - est) * (1.0 - c.availability.clamp(0.0, 1.0));
    }
    picked
}

/// Eviction weight of a hosted replica: hotness × the marginal
/// availability it contributes, approximated by how unavailable the
/// document's home peer is (a replica of a doc whose home is nearly
/// always online adds almost nothing; a hot doc from a flaky home is
/// the last thing to drop). `hotness + 1` keeps never-queried replicas
/// comparable instead of uniformly zero.
pub fn eviction_weight(hotness: u64, home_availability: f64) -> f64 {
    (hotness + 1) as f64 * (1.0 - home_availability.clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn availability_math_matches_closed_form() {
        assert_eq!(estimated_availability([]), 0.0);
        assert!((estimated_availability([0.5]) - 0.5).abs() < 1e-12);
        // 1 - 0.5*0.5 = 0.75
        assert!((estimated_availability([0.5, 0.5]) - 0.75).abs() < 1e-12);
        // Clamping: junk inputs cannot push past [0, 1].
        assert_eq!(estimated_availability([2.0]), 1.0);
        assert_eq!(estimated_availability([-3.0, 0.0]), 0.0);
    }

    fn cand(peer: PeerId, availability: f64, spare: u64) -> Candidate {
        Candidate {
            peer,
            availability,
            spare_bytes: spare,
        }
    }

    #[test]
    fn picks_best_available_until_target() {
        let cands = [cand(1, 0.3, 1000), cand(2, 0.95, 1000), cand(3, 0.6, 1000)];
        // Home at 0.3; one 0.95 peer already clears 0.9:
        // 1 - 0.7*0.05 = 0.965.
        let picked = pick_targets(0.3, 0.9, 100, &cands, 3);
        assert_eq!(picked, vec![2]);

        // Higher target needs the 0.6 peer too:
        // 1 - 0.7*0.05*0.4 = 0.986.
        let picked = pick_targets(0.3, 0.98, 100, &cands, 3);
        assert_eq!(picked, vec![2, 3]);

        // Past what every candidate together can reach, all of them
        // get picked (capped only by max_new).
        let picked = pick_targets(0.3, 0.999, 100, &cands, 3);
        assert_eq!(picked, vec![2, 3, 1]);
    }

    #[test]
    fn respects_capacity_budget_and_current() {
        let cands = [cand(1, 0.9, 50), cand(2, 0.8, 1000)];
        // Peer 1 lacks room for a 100-byte doc.
        assert_eq!(pick_targets(0.2, 0.9, 100, &cands, 4), vec![2]);
        // Already at target: nothing to do.
        assert!(pick_targets(0.95, 0.9, 100, &cands, 4).is_empty());
        // max_new caps the fan-out even when under target.
        assert!(pick_targets(0.0, 1.0, 10, &cands, 0).is_empty());
    }

    #[test]
    fn ties_break_by_peer_id() {
        let cands = [cand(7, 0.5, 100), cand(3, 0.5, 100)];
        assert_eq!(pick_targets(0.0, 0.99, 10, &cands, 1), vec![3]);
    }

    #[test]
    fn eviction_weight_orders_sensibly() {
        // Hot doc from a flaky home outweighs a cold one from a stable
        // home.
        assert!(eviction_weight(50, 0.3) > eviction_weight(0, 0.3));
        assert!(eviction_weight(10, 0.2) > eviction_weight(10, 0.95));
        // Cold replicas still have nonzero weight.
        assert!(eviction_weight(0, 0.5) > 0.0);
    }
}
