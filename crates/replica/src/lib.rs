//! Availability-aware autonomous content replication.
//!
//! PlanetP gossips the *directory* everywhere but leaves each document
//! on exactly one peer, so under the paper's §7 churn model a large
//! slice of the indexed corpus is unreachable at any instant. This
//! crate adds the decision layer that repairs that: every node tracks
//! which of its documents are hot (a space-saving frequent-items
//! sketch over served query hits), estimates each peer's availability
//! from the gossiped directory status history, and pushes copies of
//! hot, under-replicated documents onto the best-available peers with
//! spare capacity. All coordination state rides the existing gossip
//! directory as a tiny [`ReplicaAd`] per peer — zero extra messages.
//!
//! The crate is transport-free on purpose: the live runtime
//! (`planetp::live`) drives [`ReplicaEngine`] from its gossip tick and
//! carries the actual document bytes over its own RPCs, while the
//! simulator (`planetp-simnet`) drives the same placement math
//! ([`placement`]) against a synthetic churn schedule to sweep target
//! availability vs storage overhead.

pub mod ad;
pub mod availability;
pub mod engine;
pub mod placement;
pub mod sketch;

pub use ad::{ReplicaAd, AD_WIRE_BYTES};
pub use availability::AvailabilityTracker;
pub use engine::{
    AdmitDecision, HostedReplica, OwnDoc, PeerView, PushPlan, ReplicaConfig, ReplicaEngine,
    ReplicaMetrics,
};
pub use placement::{estimated_availability, eviction_weight, pick_targets, Candidate};
pub use sketch::SpaceSaving;
