//! The gossiped replication advertisement.
//!
//! `ReplicaAd` is the entire coordination protocol: a few bytes of
//! per-peer state (spare replica capacity, self-reported availability,
//! hosted-replica count) that ride the same gossiped per-peer payload
//! as the Bloom filter. Every member therefore holds a community-wide
//! placement view that is as fresh as the directory itself, with zero
//! additional messages — the same trick PlanetP uses for the directory
//! proper.

use serde::{Deserialize, Serialize};

/// Per-peer replication state, gossiped inside the live payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicaAd {
    /// Bytes of replica capacity still unclaimed on this peer.
    pub spare_bytes: u64,
    /// The peer's self-reported availability, in thousandths (0–1000).
    /// Placement treats this as a claim and takes the minimum with the
    /// local EWMA observation, so an optimistic peer cannot inflate
    /// its own attractiveness past what the community has seen.
    pub availability_milli: u16,
    /// Replicas this peer currently hosts for others.
    pub replica_count: u32,
}

/// Serialized footprint used for wire-cost accounting: 8 (spare) +
/// 2 (availability) + 4 (count) bytes.
pub const AD_WIRE_BYTES: usize = 14;

impl ReplicaAd {
    /// Self-reported availability as a fraction in [0, 1].
    pub fn availability(&self) -> f64 {
        f64::from(self.availability_milli.min(1000)) / 1000.0
    }

    /// Build an ad with `availability` given as a fraction.
    pub fn new(spare_bytes: u64, availability: f64, replica_count: u32) -> Self {
        Self {
            spare_bytes,
            availability_milli: (availability.clamp(0.0, 1.0) * 1000.0).round() as u16,
            replica_count,
        }
    }
}

impl Default for ReplicaAd {
    fn default() -> Self {
        Self::new(0, 0.0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn availability_round_trips_through_milli() {
        let ad = ReplicaAd::new(1 << 20, 0.75, 3);
        assert_eq!(ad.availability_milli, 750);
        assert!((ad.availability() - 0.75).abs() < 1e-9);
        assert_eq!(ad.spare_bytes, 1 << 20);
        assert_eq!(ad.replica_count, 3);
    }

    #[test]
    fn availability_clamps() {
        assert_eq!(ReplicaAd::new(0, 1.7, 0).availability(), 1.0);
        assert_eq!(ReplicaAd::new(0, -0.2, 0).availability(), 0.0);
        // A corrupt wire value above 1000 still reads as 1.0.
        let ad = ReplicaAd {
            availability_milli: 6000,
            ..ReplicaAd::default()
        };
        assert_eq!(ad.availability(), 1.0);
    }
}
