//! The replication decision engine.
//!
//! One `ReplicaEngine` lives on each node, driven by the host runtime:
//! the live TCP runtime calls it from the gossip tick, the simulator
//! from its event loop. The engine owns all replication *state* —
//! hotness sketch, availability estimates, the set of replicas this
//! node hosts for others, and the confirmed holders of this node's own
//! documents — and turns it into *decisions*: which documents to push
//! where ([`ReplicaEngine::plan_pushes`]) and whether to admit an
//! incoming copy, evicting colder replicas under capacity pressure
//! ([`ReplicaEngine::admit`]). Moving the bytes is the host's job.

use crate::ad::ReplicaAd;
use crate::availability::AvailabilityTracker;
use crate::placement::{estimated_availability, eviction_weight, pick_targets, Candidate};
use crate::sketch::SpaceSaving;
use planetp_gossip::PeerId;
use planetp_obs::{names, Counter, Gauge, Registry};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Tuning knobs for one node's replication behavior.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplicaConfig {
    /// Master switch: when false the live runtime neither advertises
    /// capacity nor pushes or accepts replicas. Off by default — a
    /// community must opt in, and tests of the unreplicated paper
    /// behavior (a dead peer's documents vanish) stay valid.
    pub enabled: bool,
    /// Bytes of local storage donated to hosting other peers' docs.
    pub capacity_bytes: u64,
    /// Push copies until `1 − Π(1 − avail_holder)` reaches this.
    pub target_availability: f64,
    /// Hard cap on replicas per local document, whatever the target.
    pub max_replicas_per_doc: usize,
    /// Max replica pushes planned per replication tick; keeps a cold
    /// start from flooding the community in one round.
    pub push_budget_per_tick: usize,
    /// Replication planning cadence, driven off the gossip loop.
    pub interval_ms: u64,
    /// Hotness-sketch and decline-cooldown decay cadence.
    pub decay_interval_ms: u64,
    /// Space-saving sketch capacity (tracked distinct documents).
    pub sketch_capacity: usize,
    /// EWMA weight for directory availability samples.
    pub availability_alpha: f64,
    /// Availability assumed for peers never sampled.
    pub availability_prior: f64,
    /// Availability this node claims for itself in its gossiped ad.
    /// A deployment wires its measured uptime here; placement at other
    /// nodes takes min(claim, their own observation) so inflating it
    /// buys nothing.
    pub advertised_availability: f64,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            capacity_bytes: 4 << 20,
            target_availability: 0.9,
            max_replicas_per_doc: 3,
            push_budget_per_tick: 4,
            interval_ms: 1_000,
            decay_interval_ms: 60_000,
            sketch_capacity: 256,
            availability_alpha: 0.2,
            availability_prior: 0.5,
            advertised_availability: 0.75,
        }
    }
}

impl ReplicaConfig {
    /// Convenience for tests and the CLI: enabled with defaults.
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }
}

/// Replication counters, shared with the node's metrics registry.
#[derive(Debug, Clone)]
pub struct ReplicaMetrics {
    /// Replica pushes sent (one per target RPC attempt).
    pub pushes: Counter,
    /// Incoming replicas admitted and ingested.
    pub accepts: Counter,
    /// Incoming replicas refused (capacity, eviction not worth it).
    pub rejects: Counter,
    /// Hosted replicas evicted under capacity pressure.
    pub evictions: Counter,
    /// Replica payload bytes accepted into the local store.
    pub bytes: Counter,
    /// Duplicate search hits collapsed by content hash at initiators.
    pub dup_hits_collapsed: Counter,
    /// Search hits only reachable via a replica (home copy unseen).
    pub recovered_hits: Counter,
    /// Gauge: replicas currently hosted for other peers.
    pub hosted: Gauge,
}

impl ReplicaMetrics {
    pub fn in_registry(registry: &Registry) -> Self {
        Self {
            pushes: registry.counter(names::REPLICA_PUSHES),
            accepts: registry.counter(names::REPLICA_ACCEPTS),
            rejects: registry.counter(names::REPLICA_REJECTS),
            evictions: registry.counter(names::REPLICA_EVICTIONS),
            bytes: registry.counter(names::REPLICA_BYTES),
            dup_hits_collapsed: registry.counter(names::REPLICA_DUP_COLLAPSED),
            recovered_hits: registry.counter(names::REPLICA_RECOVERED_HITS),
            hosted: registry.gauge(names::REPLICA_HOSTED),
        }
    }

    pub fn detached() -> Self {
        Self::in_registry(&Registry::new())
    }
}

/// A replica this node hosts on another peer's behalf.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostedReplica {
    /// The document's home peer.
    pub home: PeerId,
    /// The document's id *at the home peer* (local ids differ).
    pub home_doc: u64,
    /// Content hash; identical across every copy.
    pub hash: u64,
    /// Payload size, counted against `capacity_bytes`.
    pub bytes: u64,
}

/// One local document, as the planner sees it.
#[derive(Debug, Clone, Copy)]
pub struct OwnDoc {
    pub doc: u64,
    pub hash: u64,
    pub bytes: u64,
}

/// One directory peer, as the planner sees it.
#[derive(Debug, Clone, Copy)]
pub struct PeerView {
    pub peer: PeerId,
    /// The peer's gossiped replication ad; `None` means it does not
    /// participate and can be neither a target nor a useful holder.
    pub ad: Option<ReplicaAd>,
    /// Online in the directory right now (required to receive a push).
    pub online: bool,
}

/// Planned pushes for one document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PushPlan {
    pub doc: u64,
    pub hash: u64,
    pub targets: Vec<PeerId>,
}

/// Outcome of [`ReplicaEngine::admit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmitDecision {
    /// This content hash is already stored locally (as an earlier
    /// replica); report success without ingesting again.
    AlreadyHosted { doc: u64 },
    /// Admit after unpublishing the listed hosted replicas (possibly
    /// none) to make room.
    Accept { evict: Vec<u64> },
    /// No room, and every eviction candidate is worth more than the
    /// incoming copy.
    Reject,
}

/// Cooldown, measured in decay periods, before re-offering a document
/// to a peer that declined it.
const DECLINE_COOLDOWN: u32 = 4;

#[derive(Debug)]
pub struct ReplicaEngine {
    cfg: ReplicaConfig,
    sketch: SpaceSaving,
    avail: AvailabilityTracker,
    /// Local doc id → replica hosted for another peer.
    hosted: BTreeMap<u64, HostedReplica>,
    /// Content hash → local doc id, for idempotent admission.
    hosted_hashes: HashMap<u64, u64>,
    /// Own doc id → peers confirmed (via `ReplicaAccept`) to hold it.
    holders: BTreeMap<u64, BTreeSet<PeerId>>,
    /// (own doc, peer) → remaining cooldown after a decline.
    declined: HashMap<(u64, PeerId), u32>,
    used_bytes: u64,
    metrics: ReplicaMetrics,
}

impl ReplicaEngine {
    pub fn new(cfg: ReplicaConfig) -> Self {
        Self::with_metrics(cfg, ReplicaMetrics::detached())
    }

    pub fn with_metrics(cfg: ReplicaConfig, metrics: ReplicaMetrics) -> Self {
        Self {
            sketch: SpaceSaving::new(cfg.sketch_capacity),
            avail: AvailabilityTracker::new(cfg.availability_alpha, cfg.availability_prior),
            cfg,
            hosted: BTreeMap::new(),
            hosted_hashes: HashMap::new(),
            holders: BTreeMap::new(),
            declined: HashMap::new(),
            used_bytes: 0,
            metrics,
        }
    }

    pub fn config(&self) -> &ReplicaConfig {
        &self.cfg
    }

    pub fn metrics(&self) -> &ReplicaMetrics {
        &self.metrics
    }

    // ------------------------------------------------------------------
    // Hotness
    // ------------------------------------------------------------------

    /// A local document (hash) was served in a query response.
    pub fn observe_served(&mut self, hash: u64) {
        self.sketch.observe(hash);
    }

    /// Seed hotness for an incoming replica from the sender's hint, so
    /// a copy of a community-hot document does not arrive looking cold
    /// and get evicted first. Capped: a hint is a claim, not history.
    pub fn seed_hotness(&mut self, hash: u64, hint: u64) {
        let current = self.sketch.estimate(hash);
        for _ in current..hint.min(current + 8) {
            self.sketch.observe(hash);
        }
    }

    pub fn hotness(&self, hash: u64) -> u64 {
        self.sketch.estimate(hash)
    }

    /// Periodic aging: decays the hotness sketch and decline cooldowns.
    pub fn decay(&mut self) {
        self.sketch.decay();
        self.declined.retain(|_, c| {
            *c -= 1;
            *c > 0
        });
    }

    // ------------------------------------------------------------------
    // Availability
    // ------------------------------------------------------------------

    /// Fold one directory status sample for `peer`.
    pub fn observe_peer(&mut self, peer: PeerId, online: bool) {
        self.avail.observe(peer, online);
    }

    /// Local EWMA availability estimate for `peer`.
    pub fn availability(&self, peer: PeerId) -> f64 {
        self.avail.estimate(peer)
    }

    /// Drop state for peers evicted from the directory.
    pub fn retain_peers(&mut self, mut keep: impl FnMut(PeerId) -> bool) {
        self.avail.retain(&mut keep);
        for set in self.holders.values_mut() {
            set.retain(|&p| keep(p));
        }
        self.declined.retain(|&(_, p), _| keep(p));
    }

    /// The ad this node gossips: spare capacity, self-claimed
    /// availability, hosted-replica count.
    pub fn local_ad(&self) -> ReplicaAd {
        ReplicaAd::new(
            self.cfg.capacity_bytes.saturating_sub(self.used_bytes),
            self.cfg.advertised_availability,
            self.hosted.len() as u32,
        )
    }

    // ------------------------------------------------------------------
    // Sender side: planning pushes
    // ------------------------------------------------------------------

    /// Plan this tick's pushes. `own_docs` are the node's home-owned
    /// documents (hosted replicas excluded by the caller); `peers` is
    /// the current directory view, self excluded. Hotter documents are
    /// planned first and the total is capped by the per-tick budget.
    pub fn plan_pushes(&self, own_docs: &[OwnDoc], peers: &[PeerView]) -> Vec<PushPlan> {
        let mut docs: Vec<&OwnDoc> = own_docs.iter().collect();
        docs.sort_by_key(|d| (std::cmp::Reverse(self.hotness(d.hash)), d.doc));

        let mut plans = Vec::new();
        let mut budget = self.cfg.push_budget_per_tick;
        for d in docs {
            if budget == 0 {
                break;
            }
            let empty = BTreeSet::new();
            let holder_set = self.holders.get(&d.doc).unwrap_or(&empty);
            let est = estimated_availability(
                std::iter::once(self.cfg.advertised_availability)
                    .chain(holder_set.iter().map(|&p| self.avail.estimate(p))),
            );
            if est >= self.cfg.target_availability {
                continue;
            }
            let room = self
                .cfg
                .max_replicas_per_doc
                .saturating_sub(holder_set.len())
                .min(budget);
            if room == 0 {
                continue;
            }
            let candidates: Vec<Candidate> = peers
                .iter()
                .filter(|p| {
                    p.online
                        && !holder_set.contains(&p.peer)
                        && !self.declined.contains_key(&(d.doc, p.peer))
                })
                .filter_map(|p| {
                    let ad = p.ad?;
                    Some(Candidate {
                        peer: p.peer,
                        // Trust the lower of our observation and the
                        // peer's own claim.
                        availability: self.avail.estimate(p.peer).min(ad.availability()),
                        spare_bytes: ad.spare_bytes,
                    })
                })
                .collect();
            let targets = pick_targets(
                est,
                self.cfg.target_availability,
                d.bytes,
                &candidates,
                room,
            );
            if !targets.is_empty() {
                budget -= targets.len();
                plans.push(PushPlan {
                    doc: d.doc,
                    hash: d.hash,
                    targets,
                });
            }
        }
        plans
    }

    /// A push was accepted: `peer` now holds our document `doc`.
    pub fn note_accept(&mut self, doc: u64, peer: PeerId) {
        self.holders.entry(doc).or_default().insert(peer);
        self.declined.remove(&(doc, peer));
    }

    /// A push was declined; back off from that (doc, peer) pair for a
    /// few decay periods.
    pub fn note_declined(&mut self, doc: u64, peer: PeerId) {
        self.declined.insert((doc, peer), DECLINE_COOLDOWN);
    }

    /// An own document was unpublished: forget its holder set.
    pub fn forget_doc(&mut self, doc: u64) {
        self.holders.remove(&doc);
        self.declined.retain(|&(d, _), _| d != doc);
    }

    /// Confirmed holders of own document `doc` (tests/diagnostics).
    pub fn holders_of(&self, doc: u64) -> Vec<PeerId> {
        self.holders
            .get(&doc)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    // ------------------------------------------------------------------
    // Receiver side: admission and hosting
    // ------------------------------------------------------------------

    /// Decide whether to admit a pushed copy of `hash` (`bytes` long)
    /// from `home`. Call [`Self::seed_hotness`] with the sender's hint
    /// first so the incoming copy competes fairly in eviction.
    pub fn admit(&self, home: PeerId, hash: u64, bytes: u64) -> AdmitDecision {
        if let Some(&doc) = self.hosted_hashes.get(&hash) {
            return AdmitDecision::AlreadyHosted { doc };
        }
        if bytes > self.cfg.capacity_bytes {
            return AdmitDecision::Reject;
        }
        let free = self.cfg.capacity_bytes - self.used_bytes;
        if bytes <= free {
            return AdmitDecision::Accept { evict: Vec::new() };
        }
        // Capacity pressure: evict strictly-colder replicas, cheapest
        // first, but only if that actually frees enough room.
        let incoming = eviction_weight(self.hotness(hash), self.avail.estimate(home));
        let mut victims: Vec<(&u64, &HostedReplica)> = self.hosted.iter().collect();
        victims.sort_by(|a, b| {
            self.weight_of(a.1)
                .partial_cmp(&self.weight_of(b.1))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(b.0))
        });
        let mut evict = Vec::new();
        let mut freed = free;
        for (&doc, r) in victims {
            if freed >= bytes {
                break;
            }
            if self.weight_of(r) >= incoming {
                break;
            }
            evict.push(doc);
            freed += r.bytes;
        }
        if freed >= bytes {
            AdmitDecision::Accept { evict }
        } else {
            AdmitDecision::Reject
        }
    }

    fn weight_of(&self, r: &HostedReplica) -> f64 {
        eviction_weight(self.hotness(r.hash), self.avail.estimate(r.home))
    }

    /// Record a freshly ingested replica under local doc id `doc`.
    /// Returns false (and records nothing) if the hash is already
    /// hosted — the caller lost a race and should unpublish its copy.
    pub fn record_hosted(&mut self, doc: u64, r: HostedReplica) -> bool {
        if self.hosted_hashes.contains_key(&r.hash) {
            return false;
        }
        self.used_bytes += r.bytes;
        self.hosted_hashes.insert(r.hash, doc);
        self.hosted.insert(doc, r);
        self.metrics.accepts.inc();
        self.metrics.bytes.add(r.bytes);
        self.metrics.hosted.set(self.hosted.len() as i64);
        true
    }

    /// Re-register a hosted replica during crash recovery: identical
    /// bookkeeping to [`Self::record_hosted`] but without counting it
    /// as new accept traffic.
    pub fn restore_hosted(&mut self, doc: u64, r: HostedReplica) {
        if self.hosted_hashes.contains_key(&r.hash) {
            return;
        }
        self.used_bytes += r.bytes;
        self.hosted_hashes.insert(r.hash, doc);
        self.hosted.insert(doc, r);
        self.metrics.hosted.set(self.hosted.len() as i64);
    }

    /// Drop a hosted replica (eviction); counts toward
    /// `replica.evictions`.
    pub fn drop_hosted(&mut self, doc: u64) -> Option<HostedReplica> {
        let r = self.hosted.remove(&doc)?;
        self.hosted_hashes.remove(&r.hash);
        self.used_bytes -= r.bytes;
        self.metrics.evictions.inc();
        self.metrics.hosted.set(self.hosted.len() as i64);
        Some(r)
    }

    /// If local doc `doc` is a hosted replica, its (home, home_doc).
    pub fn replica_origin(&self, doc: u64) -> Option<(PeerId, u64)> {
        self.hosted.get(&doc).map(|r| (r.home, r.home_doc))
    }

    /// Snapshot of local doc id → (home, home_doc) for every hosted
    /// replica; used to annotate search responses without holding the
    /// engine lock across store scoring.
    pub fn origins(&self) -> BTreeMap<u64, (PeerId, u64)> {
        self.hosted
            .iter()
            .map(|(&d, r)| (d, (r.home, r.home_doc)))
            .collect()
    }

    pub fn is_replica(&self, doc: u64) -> bool {
        self.hosted.contains_key(&doc)
    }

    pub fn hosted_count(&self) -> usize {
        self.hosted.len()
    }

    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(capacity: u64) -> ReplicaEngine {
        ReplicaEngine::new(ReplicaConfig {
            enabled: true,
            capacity_bytes: capacity,
            ..ReplicaConfig::default()
        })
    }

    fn peer(peer: PeerId, avail: f64, spare: u64) -> PeerView {
        PeerView {
            peer,
            ad: Some(ReplicaAd::new(spare, avail, 0)),
            online: true,
        }
    }

    #[test]
    fn plans_pushes_for_under_replicated_docs_only() {
        let mut e = engine(1 << 20);
        // Observe peer 2 online repeatedly so its EWMA is high.
        for _ in 0..40 {
            e.observe_peer(2, true);
            e.observe_peer(3, false);
        }
        let docs = [OwnDoc {
            doc: 1,
            hash: 0xA,
            bytes: 100,
        }];
        let peers = [peer(2, 0.95, 1000), peer(3, 0.95, 1000)];
        let plans = e.plan_pushes(&docs, &peers);
        // Advertised self-availability 0.75 < target 0.9 → must push;
        // peer 2 (observed ~1.0, claimed 0.95 → 0.95) beats peer 3
        // (observed ~0, claimed 0.95 → ~0).
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].doc, 1);
        assert_eq!(plans[0].targets, vec![2]);

        // Once peer 2 confirms, the doc clears the target: no plans.
        e.note_accept(1, 2);
        assert!(e.plan_pushes(&docs, &peers).is_empty());
    }

    #[test]
    fn declined_peers_cool_down_and_recover() {
        let mut e = engine(1 << 20);
        for _ in 0..40 {
            e.observe_peer(2, true);
        }
        let docs = [OwnDoc {
            doc: 1,
            hash: 0xA,
            bytes: 100,
        }];
        let peers = [peer(2, 1.0, 1000)];
        assert!(!e.plan_pushes(&docs, &peers).is_empty());
        e.note_declined(1, 2);
        assert!(e.plan_pushes(&docs, &peers).is_empty(), "cooldown holds");
        for _ in 0..DECLINE_COOLDOWN {
            e.decay();
        }
        assert!(!e.plan_pushes(&docs, &peers).is_empty(), "cooldown expires");
    }

    #[test]
    fn budget_caps_pushes_per_tick() {
        let mut e = ReplicaEngine::new(ReplicaConfig {
            enabled: true,
            push_budget_per_tick: 2,
            max_replicas_per_doc: 1,
            ..ReplicaConfig::default()
        });
        for _ in 0..40 {
            e.observe_peer(9, true);
        }
        let docs: Vec<OwnDoc> = (0..5)
            .map(|i| OwnDoc {
                doc: i,
                hash: 0x100 + i,
                bytes: 10,
            })
            .collect();
        let peers = [peer(9, 1.0, 1 << 20)];
        let plans = e.plan_pushes(&docs, &peers);
        let total: usize = plans.iter().map(|p| p.targets.len()).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn admits_records_and_is_idempotent_by_hash() {
        let mut e = engine(1000);
        match e.admit(7, 0xBEEF, 400) {
            AdmitDecision::Accept { evict } => assert!(evict.is_empty()),
            other => panic!("expected accept, got {other:?}"),
        }
        assert!(e.record_hosted(
            10,
            HostedReplica {
                home: 7,
                home_doc: 3,
                hash: 0xBEEF,
                bytes: 400
            }
        ));
        assert_eq!(e.used_bytes(), 400);
        assert_eq!(e.replica_origin(10), Some((7, 3)));
        assert_eq!(
            e.admit(7, 0xBEEF, 400),
            AdmitDecision::AlreadyHosted { doc: 10 }
        );
        // Racing duplicate record is refused.
        assert!(!e.record_hosted(
            11,
            HostedReplica {
                home: 7,
                home_doc: 3,
                hash: 0xBEEF,
                bytes: 400
            }
        ));
        assert_eq!(e.hosted_count(), 1);
    }

    #[test]
    fn eviction_frees_room_for_hotter_incoming() {
        let mut e = engine(1000);
        // Home peers: 5 is flaky, 6 is solid.
        for _ in 0..40 {
            e.observe_peer(5, false);
            e.observe_peer(6, true);
        }
        assert!(e.record_hosted(
            1,
            HostedReplica {
                home: 6,
                home_doc: 1,
                hash: 0xC01D,
                bytes: 600
            }
        ));
        // Incoming 600-byte doc from flaky home 5, hot.
        e.seed_hotness(0x107, 6);
        match e.admit(5, 0x107, 600) {
            AdmitDecision::Accept { evict } => assert_eq!(evict, vec![1]),
            other => panic!("expected eviction accept, got {other:?}"),
        }
        // Reverse case: cold incoming from solid home loses to the
        // hot resident from the flaky home.
        let mut e2 = engine(1000);
        for _ in 0..40 {
            e2.observe_peer(5, false);
            e2.observe_peer(6, true);
        }
        e2.seed_hotness(0x107, 6);
        assert!(e2.record_hosted(
            1,
            HostedReplica {
                home: 5,
                home_doc: 1,
                hash: 0x107,
                bytes: 600
            }
        ));
        assert_eq!(e2.admit(6, 0xC01D, 600), AdmitDecision::Reject);
    }

    #[test]
    fn oversized_doc_rejected_outright() {
        let e = engine(100);
        assert_eq!(e.admit(1, 0x1, 101), AdmitDecision::Reject);
    }

    #[test]
    fn drop_hosted_updates_books_and_ad() {
        let mut e = engine(1000);
        assert!(e.record_hosted(
            4,
            HostedReplica {
                home: 2,
                home_doc: 9,
                hash: 0xF00,
                bytes: 250
            }
        ));
        assert_eq!(e.local_ad().spare_bytes, 750);
        assert_eq!(e.local_ad().replica_count, 1);
        let r = e.drop_hosted(4).expect("hosted");
        assert_eq!(r.hash, 0xF00);
        assert_eq!(e.used_bytes(), 0);
        assert_eq!(e.local_ad().spare_bytes, 1000);
        assert_eq!(e.metrics().evictions.get(), 1);
        assert!(e.drop_hosted(4).is_none());
    }

    #[test]
    fn restore_does_not_count_as_accept_traffic() {
        let mut e = engine(1000);
        e.restore_hosted(
            2,
            HostedReplica {
                home: 3,
                home_doc: 1,
                hash: 0xAB,
                bytes: 100,
            },
        );
        assert_eq!(e.metrics().accepts.get(), 0);
        assert_eq!(e.metrics().bytes.get(), 0);
        assert_eq!(e.hosted_count(), 1);
        assert_eq!(e.used_bytes(), 100);
    }

    #[test]
    fn forget_doc_clears_holder_state() {
        let mut e = engine(1000);
        e.note_accept(1, 2);
        e.note_declined(1, 3);
        assert_eq!(e.holders_of(1), vec![2]);
        e.forget_doc(1);
        assert!(e.holders_of(1).is_empty());
    }
}
