//! Query-named directories.

use std::collections::BTreeMap;

/// A link to a shared file, as listed in a PFS directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileLink {
    /// The file's URL at its owner's file server.
    pub url: String,
    /// The owning peer's name.
    pub owner: String,
    /// The file's name (last path segment).
    pub name: String,
}

/// The contents of a query directory at some point in time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DirectoryListing {
    /// Links keyed by URL (stable, unique).
    pub entries: BTreeMap<String, FileLink>,
}

impl DirectoryListing {
    /// Number of linked files.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// File names in sorted-by-URL order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.values().map(|l| l.name.as_str()).collect()
    }
}

/// Internal directory state: the query, its listing, and refresh
/// bookkeeping.
#[derive(Debug)]
pub(crate) struct QueryDirectory {
    pub(crate) query: String,
    pub(crate) listing: DirectoryListing,
    /// Logical time of the last full refresh.
    pub(crate) refreshed_at: u64,
    /// Set when a persistent-query upcall hints at new matches.
    pub(crate) dirty: bool,
    pub(crate) persistent_query_id: planetp::PersistentQueryId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listing_names_sorted_by_url() {
        let mut l = DirectoryListing::default();
        for (url, name) in [("pfs://b/2", "two"), ("pfs://a/1", "one")] {
            l.entries.insert(
                url.to_string(),
                FileLink {
                    url: url.to_string(),
                    owner: "x".into(),
                    name: name.to_string(),
                },
            );
        }
        assert_eq!(l.names(), vec!["one", "two"]);
        assert_eq!(l.len(), 2);
    }
}
