//! PFS: a personal semantic file system over PlanetP (§6 of the paper).
//!
//! PFS gives each user a *query-named* namespace over the community's
//! shared files: "a directory is created in PFS whenever the user poses
//! a query. PFS creates links to files that match the query in the
//! resulting directory." Files live in each peer's own storage; PFS
//! publishes them to PlanetP so the whole community can search them by
//! content.
//!
//! The paper's three components map as follows:
//!
//! - **File Server** → [`FileServer`]: "a very simple web server" that
//!   returns a URL for a local pathname and serves file content.
//! - **PFS Core** → [`PfsNode`]: publication (dual: Bloom filter via
//!   PlanetP indexing *and* the 10% hottest terms to the brokerage with
//!   a 10-minute discard time) and query-directory maintenance via
//!   persistent queries.
//! - **Explorer** (the GUI) → the examples; this crate is the library.

pub mod directory;
pub mod fileserver;
pub mod node;

pub use directory::{DirectoryListing, FileLink};
pub use fileserver::FileServer;
pub use node::{PfsNode, SharedCommunity};
