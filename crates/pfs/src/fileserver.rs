//! The per-peer file server.
//!
//! "The File Server is a very simple web server that provides two
//! functions: (a) return a URL when given a local pathname, (b) return
//! the content of the appropriate file in response to a GET operation"
//! (§6). Files are held in memory here; the paper's deployment served
//! them off the local file system.

use std::collections::HashMap;

/// A peer's file server: pathname → URL mapping plus content storage.
#[derive(Debug, Clone, Default)]
pub struct FileServer {
    owner: String,
    files: HashMap<String, String>,
}

impl FileServer {
    /// File server for the named peer.
    pub fn new(owner: &str) -> Self {
        Self {
            owner: owner.to_string(),
            files: HashMap::new(),
        }
    }

    /// Store a file and return its URL (function (a)).
    pub fn add(&mut self, path: &str, content: &str) -> String {
        self.files.insert(path.to_string(), content.to_string());
        self.url_for(path)
    }

    /// The URL a path is served under.
    pub fn url_for(&self, path: &str) -> String {
        format!("pfs://{}/{}", self.owner, path.trim_start_matches('/'))
    }

    /// GET by path (function (b)).
    pub fn get(&self, path: &str) -> Option<&str> {
        self.files.get(path).map(String::as_str)
    }

    /// GET by full URL.
    pub fn get_url(&self, url: &str) -> Option<&str> {
        let prefix = format!("pfs://{}/", self.owner);
        let path = url.strip_prefix(&prefix)?;
        self.get(path)
    }

    /// Remove a file. Returns whether it existed.
    pub fn remove(&mut self, path: &str) -> bool {
        self.files.remove(path).is_some()
    }

    /// Number of files served.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True when no files are stored.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_roundtrip() {
        let mut fs = FileServer::new("alice");
        let url = fs.add("papers/gossip.txt", "epidemic algorithms");
        assert_eq!(url, "pfs://alice/papers/gossip.txt");
        assert_eq!(fs.get("papers/gossip.txt"), Some("epidemic algorithms"));
        assert_eq!(fs.get_url(&url), Some("epidemic algorithms"));
    }

    #[test]
    fn get_url_rejects_foreign_urls() {
        let mut fs = FileServer::new("alice");
        fs.add("a.txt", "x");
        assert_eq!(fs.get_url("pfs://bob/a.txt"), None);
    }

    #[test]
    fn remove_works() {
        let mut fs = FileServer::new("a");
        fs.add("f", "c");
        assert!(fs.remove("f"));
        assert!(!fs.remove("f"));
        assert!(fs.is_empty());
    }

    #[test]
    fn leading_slash_normalized() {
        let fs = FileServer::new("a");
        assert_eq!(fs.url_for("/x/y"), "pfs://a/x/y");
    }
}
