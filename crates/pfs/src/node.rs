//! PFS Core: publication and directory maintenance.

use parking_lot::Mutex;
use planetp::{Community, PeerHandle, PlanetPError, PublishOptions};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::directory::{DirectoryListing, FileLink, QueryDirectory};
use crate::fileserver::FileServer;

/// The community shared by all PFS users in this process.
pub type SharedCommunity = Arc<Mutex<Community>>;

/// Refresh threshold: reopening a directory whose last refresh is older
/// than this re-runs its query ("Whenever the user opens a directory,
/// PFS checks the last time that the directory was updated. If this
/// time is greater than a fixed threshold, PFS reruns the entire query
/// to get rid of stale files", §6).
pub const STALE_THRESHOLD_MS: u64 = 60_000;

/// Hot-term fraction for the dual publication (§6: "the 10% most
/// frequently appearing terms in the file").
pub const HOT_TERM_FRACTION: f64 = 0.10;

/// One user's PFS instance.
pub struct PfsNode {
    community: SharedCommunity,
    peer: PeerHandle,
    user: String,
    file_server: FileServer,
    directories: HashMap<String, QueryDirectory>,
    /// Signals from persistent-query upcalls, keyed like `directories`.
    hints: Arc<Mutex<HashMap<String, Arc<AtomicBool>>>>,
}

impl PfsNode {
    /// Join (or found) a PFS community as `user`.
    pub fn new(community: SharedCommunity, user: &str) -> Self {
        let peer = community.lock().add_peer(user);
        Self {
            community,
            peer,
            user: user.to_string(),
            file_server: FileServer::new(user),
            directories: HashMap::new(),
            hints: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// The user's name.
    pub fn user(&self) -> &str {
        &self.user
    }

    /// The user's file server.
    pub fn file_server(&self) -> &FileServer {
        &self.file_server
    }

    /// Share a file: store it with the file server, then publish an XML
    /// snippet embedding the URL and content to PlanetP. PlanetP
    /// indexes the text and publishes the 10% hottest terms to the
    /// brokerage with a 10-minute discard time (the "dual publication",
    /// §6).
    pub fn publish_file(&mut self, path: &str, content: &str) -> Result<String, PlanetPError> {
        let url = self.file_server.add(path, content);
        let name = path.rsplit('/').next().unwrap_or(path);
        let xml = format!(
            r#"<pfsfile href="{url}" name="{name}" owner="{}">{}</pfsfile>"#,
            self.user,
            xml_escape(content),
        );
        self.community.lock().publish(
            self.peer,
            &xml,
            PublishOptions {
                broker_hot_terms: Some(HOT_TERM_FRACTION),
            },
        )?;
        Ok(url)
    }

    /// Create a query-named directory ("Building a query-based
    /// subdirectory is equivalent to refining the query of the
    /// containing directory" — pass the refined query). The directory
    /// is populated immediately and then kept fresh by a persistent
    /// query plus staleness-triggered refreshes.
    pub fn make_directory(&mut self, query: &str) -> Result<(), PlanetPError> {
        if self.directories.contains_key(query) {
            return Ok(());
        }
        let flag = Arc::new(AtomicBool::new(false));
        self.hints
            .lock()
            .insert(query.to_string(), Arc::clone(&flag));
        let pq_id = {
            let f = Arc::clone(&flag);
            self.community
                .lock()
                .register_persistent_query(self.peer, query, move |_| {
                    f.store(true, Ordering::SeqCst);
                })
        };
        let mut dir = QueryDirectory {
            query: query.to_string(),
            listing: DirectoryListing::default(),
            refreshed_at: 0,
            dirty: true,
            persistent_query_id: pq_id,
        };
        self.refresh(&mut dir);
        self.directories.insert(query.to_string(), dir);
        Ok(())
    }

    /// Open a directory: refresh if a persistent query hinted at new
    /// content or if the listing is stale, then return it.
    pub fn open_directory(&mut self, query: &str) -> Option<DirectoryListing> {
        let hint = self
            .hints
            .lock()
            .get(query)
            .map(|f| f.swap(false, Ordering::SeqCst))
            .unwrap_or(false);
        let now = self.community.lock().now_ms();
        let dir = self.directories.get_mut(query)?;
        if hint || dir.dirty || now.saturating_sub(dir.refreshed_at) > STALE_THRESHOLD_MS {
            let mut d = std::mem::replace(
                dir,
                QueryDirectory {
                    query: String::new(),
                    listing: DirectoryListing::default(),
                    refreshed_at: 0,
                    dirty: false,
                    persistent_query_id: 0,
                },
            );
            self.refresh(&mut d);
            *self.directories.get_mut(query).expect("present above") = d;
        }
        self.directories.get(query).map(|d| d.listing.clone())
    }

    /// Create a subdirectory of an existing query directory: "Building
    /// a query-based subdirectory is equivalent to refining the query of
    /// the containing directory" (§6). The subdirectory's query is the
    /// parent's query plus the refinement terms; its listing is always a
    /// subset of the parent's.
    pub fn make_subdirectory(
        &mut self,
        parent_query: &str,
        refinement: &str,
    ) -> Result<Option<String>, PlanetPError> {
        if !self.directories.contains_key(parent_query) {
            return Ok(None);
        }
        let combined = format!("{parent_query} {refinement}");
        self.make_directory(&combined)?;
        Ok(Some(combined))
    }

    /// Remove a directory and its persistent query.
    pub fn remove_directory(&mut self, query: &str) -> bool {
        let Some(dir) = self.directories.remove(query) else {
            return false;
        };
        self.hints.lock().remove(query);
        self.community
            .lock()
            .unregister_persistent_query(self.peer, dir.persistent_query_id);
        true
    }

    /// Names of the user's directories.
    pub fn directories(&self) -> Vec<&str> {
        self.directories.keys().map(String::as_str).collect()
    }

    /// Re-run the directory's query exhaustively and rebuild its
    /// listing (handles both additions and removals).
    fn refresh(&self, dir: &mut QueryDirectory) {
        let community = self.community.lock();
        let mut listing = DirectoryListing::default();
        if let Ok(hits) = community.search_exhaustive(self.peer, &dir.query) {
            for hit in hits.results.into_iter() {
                if let Some(link) = parse_pfsfile(&hit.xml) {
                    listing.entries.insert(link.url.clone(), link);
                }
            }
            for snippet in hits.snippets {
                if let Some(link) = parse_pfsfile(&snippet) {
                    listing.entries.insert(link.url.clone(), link);
                }
            }
        }
        dir.listing = listing;
        dir.refreshed_at = community.now_ms();
        dir.dirty = false;
    }
}

/// Extract a [`FileLink`] from a published `<pfsfile>` snippet.
fn parse_pfsfile(xml: &str) -> Option<FileLink> {
    let doc = planetp_xml_parse(xml)?;
    Some(FileLink {
        url: doc.0,
        owner: doc.1,
        name: doc.2,
    })
}

/// Minimal attribute extraction via the index crate's XML parser.
fn planetp_xml_parse(xml: &str) -> Option<(String, String, String)> {
    // planetp re-exports the parser through its dependency; parse here
    // directly with a lightweight scan to avoid a public dependency on
    // the index crate: attributes are produced by PFS itself.
    let href = attr_value(xml, "href")?;
    let owner = attr_value(xml, "owner")?;
    let name = attr_value(xml, "name")?;
    Some((href, owner, name))
}

fn attr_value(xml: &str, attr: &str) -> Option<String> {
    let pat = format!("{attr}=\"");
    let start = xml.find(&pat)? + pat.len();
    let end = xml[start..].find('"')? + start;
    Some(xml[start..end].to_string())
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared() -> SharedCommunity {
        Arc::new(Mutex::new(Community::new()))
    }

    #[test]
    fn publish_then_directory_lists_it() {
        let community = shared();
        let mut alice = PfsNode::new(Arc::clone(&community), "alice");
        let mut bob = PfsNode::new(Arc::clone(&community), "bob");

        bob.publish_file(
            "papers/epidemic.txt",
            "epidemic gossip algorithms for databases",
        )
        .unwrap();
        alice.make_directory("gossip algorithms").unwrap();
        let listing = alice.open_directory("gossip algorithms").unwrap();
        assert_eq!(listing.len(), 1);
        assert_eq!(listing.names(), vec!["epidemic.txt"]);
        let link = listing.entries.values().next().unwrap();
        assert_eq!(link.owner, "bob");
        // The link resolves at the owner's file server.
        assert!(bob
            .file_server()
            .get_url(&link.url)
            .unwrap()
            .contains("epidemic"));
    }

    #[test]
    fn directory_updates_when_new_files_appear() {
        let community = shared();
        let mut alice = PfsNode::new(Arc::clone(&community), "alice");
        let mut bob = PfsNode::new(Arc::clone(&community), "bob");

        alice.make_directory("quantum").unwrap();
        assert!(alice.open_directory("quantum").unwrap().is_empty());

        bob.publish_file("q.txt", "quantum computing notes")
            .unwrap();
        let listing = alice.open_directory("quantum").unwrap();
        assert_eq!(listing.len(), 1, "persistent query must refresh the dir");
    }

    #[test]
    fn removal_reflected_after_stale_refresh() {
        let community = shared();
        let mut alice = PfsNode::new(Arc::clone(&community), "alice");
        let url = alice
            .publish_file("tmp.txt", "ephemeral topic notes")
            .unwrap();
        alice.make_directory("ephemeral").unwrap();
        assert_eq!(alice.open_directory("ephemeral").unwrap().len(), 1);

        // Owner deletes the file (unpublish doc 1, its only doc).
        {
            let mut c = community.lock();
            let peer = c.peer("alice").unwrap();
            c.unpublish(peer, 1).unwrap();
            // Make the directory stale.
            c.advance_time(STALE_THRESHOLD_MS + 1);
        }
        let listing = alice.open_directory("ephemeral").unwrap();
        assert!(listing.is_empty(), "stale refresh must drop removed files");
        let _ = url;
    }

    #[test]
    fn remove_directory_stops_tracking() {
        let community = shared();
        let mut alice = PfsNode::new(Arc::clone(&community), "alice");
        alice.make_directory("x").unwrap();
        assert!(alice.remove_directory("x"));
        assert!(!alice.remove_directory("x"));
        assert!(alice.open_directory("x").is_none());
    }

    #[test]
    fn subdirectory_refines_parent_query() {
        let community = shared();
        let mut alice = PfsNode::new(Arc::clone(&community), "alice");
        let mut bob = PfsNode::new(Arc::clone(&community), "bob");
        bob.publish_file("a.txt", "gossip protocols for databases")
            .unwrap();
        bob.publish_file("b.txt", "gossip protocols for filesystems")
            .unwrap();
        alice.make_directory("gossip protocols").unwrap();
        let sub = alice
            .make_subdirectory("gossip protocols", "databases")
            .unwrap()
            .expect("parent exists");
        let parent = alice.open_directory("gossip protocols").unwrap();
        let child = alice.open_directory(&sub).unwrap();
        assert_eq!(parent.len(), 2);
        assert_eq!(child.len(), 1);
        assert_eq!(child.names(), vec!["a.txt"]);
        // Subdirectory listing is a subset of the parent's.
        for url in child.entries.keys() {
            assert!(parent.entries.contains_key(url));
        }
    }

    #[test]
    fn subdirectory_of_missing_parent_refused() {
        let community = shared();
        let mut alice = PfsNode::new(Arc::clone(&community), "alice");
        assert_eq!(alice.make_subdirectory("no such dir", "x").unwrap(), None);
    }

    #[test]
    fn duplicate_make_directory_is_idempotent() {
        let community = shared();
        let mut alice = PfsNode::new(Arc::clone(&community), "alice");
        alice.make_directory("topic").unwrap();
        alice.make_directory("topic").unwrap();
        assert_eq!(alice.directories(), vec!["topic"]);
    }

    #[test]
    fn escaped_content_roundtrips() {
        let community = shared();
        let mut alice = PfsNode::new(Arc::clone(&community), "alice");
        let mut bob = PfsNode::new(Arc::clone(&community), "bob");
        bob.publish_file("odd.txt", "angle <brackets> & ampersands in weirdterm")
            .unwrap();
        alice.make_directory("weirdterm").unwrap();
        assert_eq!(alice.open_directory("weirdterm").unwrap().len(), 1);
    }
}
