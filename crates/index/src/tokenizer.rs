//! Word extraction.
//!
//! PlanetP "indexes any text in a published XML document" (§2). The
//! tokenizer lower-cases and splits on anything that is not an ASCII
//! letter or digit, keeping alphanumeric runs of length ≥ 2 that contain
//! at least one letter (pure numbers are rarely useful search keys and
//! bloat the vocabulary).

/// Tokenize text into lower-case terms.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        if ch.is_ascii_alphanumeric() {
            cur.push(ch.to_ascii_lowercase());
        } else if !cur.is_empty() {
            push_token(&mut out, std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        push_token(&mut out, cur);
    }
    out
}

fn push_token(out: &mut Vec<String>, tok: String) {
    if tok.len() >= 2 && tok.bytes().any(|b| b.is_ascii_alphabetic()) {
        out.push(tok);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_punctuation_and_whitespace() {
        assert_eq!(
            tokenize("Hello, world! foo-bar_baz"),
            vec!["hello", "world", "foo", "bar", "baz"]
        );
    }

    #[test]
    fn lowercases() {
        assert_eq!(tokenize("PlanetP GOSSIP"), vec!["planetp", "gossip"]);
    }

    #[test]
    fn drops_single_chars_and_pure_numbers() {
        assert_eq!(tokenize("a 1 42 b2 2022 x9"), vec!["b2", "x9"]);
    }

    #[test]
    fn empty_input() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("  \t\n .,;").is_empty());
    }

    #[test]
    fn non_ascii_acts_as_separator() {
        assert_eq!(
            tokenize("caf\u{e9}teria naïve"),
            vec!["caf", "teria", "na", "ve"]
        );
    }

    #[test]
    fn keeps_alphanumeric_mix() {
        assert_eq!(tokenize("ipv6 x86 p2p"), vec!["ipv6", "x86", "p2p"]);
    }
}
