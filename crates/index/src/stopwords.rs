//! English stop-word list.
//!
//! The paper's pre-processing "tries to eliminate frequently used words
//! like *the*, *of*, etc." (§7.3). This is the classic Van
//! Rijsbergen-style short list used by SMART-era systems, kept sorted so
//! membership is a binary search with no allocation.

/// Sorted list of stop words.
pub static STOPWORDS: &[&str] = &[
    "about",
    "above",
    "after",
    "again",
    "against",
    "all",
    "am",
    "an",
    "and",
    "any",
    "are",
    "as",
    "at",
    "be",
    "because",
    "been",
    "before",
    "being",
    "below",
    "between",
    "both",
    "but",
    "by",
    "can",
    "cannot",
    "could",
    "did",
    "do",
    "does",
    "doing",
    "down",
    "during",
    "each",
    "etc",
    "few",
    "for",
    "from",
    "further",
    "had",
    "has",
    "have",
    "having",
    "he",
    "her",
    "here",
    "hers",
    "herself",
    "him",
    "himself",
    "his",
    "how",
    "if",
    "in",
    "into",
    "is",
    "it",
    "its",
    "itself",
    "me",
    "more",
    "most",
    "my",
    "myself",
    "no",
    "nor",
    "not",
    "of",
    "off",
    "on",
    "once",
    "only",
    "or",
    "other",
    "ought",
    "our",
    "ours",
    "ourselves",
    "out",
    "over",
    "own",
    "same",
    "she",
    "should",
    "so",
    "some",
    "such",
    "than",
    "that",
    "the",
    "their",
    "theirs",
    "them",
    "themselves",
    "then",
    "there",
    "these",
    "they",
    "this",
    "those",
    "through",
    "to",
    "too",
    "under",
    "until",
    "up",
    "upon",
    "very",
    "was",
    "we",
    "were",
    "what",
    "when",
    "where",
    "which",
    "while",
    "who",
    "whom",
    "why",
    "will",
    "with",
    "would",
    "you",
    "your",
    "yours",
    "yourself",
    "yourselves",
];

/// True if `word` (already lower-case) is a stop word.
pub fn is_stopword(word: &str) -> bool {
    STOPWORDS.binary_search(&word).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_is_sorted_and_unique() {
        assert!(STOPWORDS.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn common_words_are_stopwords() {
        for w in ["the", "of", "and", "is", "to", "etc"] {
            assert!(is_stopword(w), "{w}");
        }
    }

    #[test]
    fn content_words_are_not() {
        for w in ["gossip", "bloom", "peer", "filter", "epidemic"] {
            assert!(!is_stopword(w), "{w}");
        }
    }

    #[test]
    fn case_sensitive_by_contract() {
        // Callers must lower-case first (the tokenizer does).
        assert!(!is_stopword("The"));
    }
}
