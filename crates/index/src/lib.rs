//! Text analysis and local indexing for PlanetP.
//!
//! PlanetP's unit of storage is an XML document (§2). Each peer extracts
//! terms from the documents it publishes, maintains a local inverted
//! index, and summarizes the index's vocabulary in a Bloom filter that is
//! gossiped to the community. The paper's evaluation pre-processes
//! documents by "doing stop word removal and stemming" (§7.3); both are
//! implemented here from scratch.
//!
//! - [`tokenizer`]: lower-casing word extraction.
//! - [`stopwords`]: a standard English stop list.
//! - [`stemmer`]: the full Porter (1980) stemming algorithm.
//! - [`xml`]: a minimal XML snippet parser (text extraction + links).
//! - [`inverted`]: the per-peer inverted index with the statistics the
//!   TFxIDF/TFxIPF rankers need (term and document frequencies, document
//!   lengths).
//!
//! [`Analyzer`] chains tokenize → stop-filter → stem, which is the
//! pipeline both indexing and query processing must share.

pub mod inverted;
pub mod stemmer;
pub mod stopwords;
pub mod tokenizer;
pub mod xml;

pub use inverted::{DocId, InvertedIndex, Posting, TermStats};
pub use stemmer::stem;
pub use tokenizer::tokenize;
pub use xml::XmlDocument;

/// The shared analysis pipeline: tokenize, drop stop words, stem.
///
/// Queries and documents must be analyzed identically or term lookups
/// miss; keep a single `Analyzer` per community configuration.
#[derive(Debug, Clone, Default)]
pub struct Analyzer {
    /// Skip stop-word removal (used by ablations).
    pub keep_stopwords: bool,
    /// Skip stemming (used by ablations).
    pub no_stemming: bool,
}

impl Analyzer {
    /// The paper's configuration: stop words removed, Porter stemming on.
    pub fn new() -> Self {
        Self::default()
    }

    /// Analyze raw text into index terms.
    pub fn analyze(&self, text: &str) -> Vec<String> {
        tokenizer::tokenize(text)
            .into_iter()
            .filter(|t| self.keep_stopwords || !stopwords::is_stopword(t))
            .map(|t| {
                if self.no_stemming {
                    t
                } else {
                    stemmer::stem(&t)
                }
            })
            .filter(|t| !t.is_empty())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyzer_pipeline() {
        let a = Analyzer::new();
        let terms = a.analyze("The running Dogs are barking, loudly!");
        // "the"/"are" are stop words; remaining words are stemmed.
        assert_eq!(terms, vec!["run", "dog", "bark", "loudli"]);
    }

    #[test]
    fn analyzer_keep_stopwords() {
        let a = Analyzer {
            keep_stopwords: true,
            no_stemming: true,
        };
        let terms = a.analyze("the cat");
        assert_eq!(terms, vec!["the", "cat"]);
    }

    #[test]
    fn query_and_document_analysis_agree() {
        let a = Analyzer::new();
        assert_eq!(
            a.analyze("distributed systems"),
            a.analyze("Distributed SYSTEM")
        );
    }
}
