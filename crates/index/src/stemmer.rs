//! The Porter stemming algorithm (M.F. Porter, 1980).
//!
//! The paper's pre-processing "tries to conflate words to their root
//! (e.g. running becomes run)" (§7.3); Porter's algorithm is the
//! standard choice for SMART/TREC-era collections. This is a faithful
//! port of the reference implementation (the well-known `porter.c`),
//! including the two commonly adopted departures from the 1980 paper
//! that the reference code documents (the `bli` → `ble` and `logi` →
//! `log` rules in step 2).
//!
//! The stemmer operates on lower-case ASCII; terms with non-letter bytes
//! are returned unchanged (the tokenizer produces alphanumeric tokens,
//! and e.g. "x86" should not be stemmed).

/// Stem a lower-case word. Words shorter than 3 letters are returned as
/// is (as in the reference implementation).
pub fn stem(word: &str) -> String {
    if word.len() <= 2 || !word.bytes().all(|b| b.is_ascii_lowercase()) {
        return word.to_string();
    }
    let mut s = Stemmer {
        b: word.as_bytes().to_vec(),
        k: word.len() as isize - 1,
        j: 0,
    };
    s.step1ab();
    s.step1c();
    s.step2();
    s.step3();
    s.step4();
    s.step5();
    s.b.truncate((s.k + 1) as usize);
    String::from_utf8(s.b).expect("ascii in, ascii out")
}

struct Stemmer {
    b: Vec<u8>,
    /// Offset of the last letter of the (current) stemmed word.
    /// `isize` because, as in the reference implementation, the offsets
    /// `j` (and transiently `k`) may be -1 when a suffix spans the whole
    /// word.
    k: isize,
    /// General offset used by the `ends`/`setto` machinery; may be -1.
    j: isize,
}

impl Stemmer {
    #[inline]
    fn at(&self, i: isize) -> u8 {
        self.b[i as usize]
    }

    /// Is b[i] a consonant?
    fn cons(&self, i: isize) -> bool {
        match self.at(i) {
            b'a' | b'e' | b'i' | b'o' | b'u' => false,
            b'y' => {
                if i == 0 {
                    true
                } else {
                    !self.cons(i - 1)
                }
            }
            _ => true,
        }
    }

    /// Number of consonant sequences between 0 and j (the "measure" m).
    fn m(&self) -> usize {
        let mut n = 0;
        let mut i: isize = 0;
        loop {
            if i > self.j {
                return n;
            }
            if !self.cons(i) {
                break;
            }
            i += 1;
        }
        i += 1;
        loop {
            loop {
                if i > self.j {
                    return n;
                }
                if self.cons(i) {
                    break;
                }
                i += 1;
            }
            i += 1;
            n += 1;
            loop {
                if i > self.j {
                    return n;
                }
                if !self.cons(i) {
                    break;
                }
                i += 1;
            }
            i += 1;
        }
    }

    /// Is there a vowel in the stem 0..=j?
    fn vowel_in_stem(&self) -> bool {
        (0..=self.j).any(|i| !self.cons(i))
    }

    /// Does b[j-1..=j] contain a double consonant?
    fn doublec(&self, j: isize) -> bool {
        j >= 1 && self.at(j) == self.at(j - 1) && self.cons(j)
    }

    /// consonant-vowel-consonant ending at i, where the final consonant
    /// is not w, x, or y; used to decide whether to restore a trailing e
    /// (hop(e), lov(e)) and to block it after snow, box, tray.
    fn cvc(&self, i: isize) -> bool {
        if i < 2 || !self.cons(i) || self.cons(i - 1) || !self.cons(i - 2) {
            return false;
        }
        !matches!(self.at(i), b'w' | b'x' | b'y')
    }

    /// Does the word end with `s`? Sets j on success.
    fn ends(&mut self, s: &[u8]) -> bool {
        let len = s.len() as isize;
        if len > self.k + 1 {
            return false;
        }
        let start = (self.k + 1 - len) as usize;
        if &self.b[start..=self.k as usize] != s {
            return false;
        }
        self.j = self.k - len;
        true
    }

    /// Replace b[j+1..=k] with `s`, readjusting k.
    fn setto(&mut self, s: &[u8]) {
        self.b.truncate((self.j + 1) as usize);
        self.b.extend_from_slice(s);
        self.k = self.j + s.len() as isize;
    }

    /// setto(s) when m() > 0.
    fn r(&mut self, s: &[u8]) {
        if self.m() > 0 {
            self.setto(s);
        }
    }

    /// Step 1ab: plurals and -ed / -ing.
    fn step1ab(&mut self) {
        if self.at(self.k) == b's' {
            if self.ends(b"sses") {
                self.k -= 2;
            } else if self.ends(b"ies") {
                self.setto(b"i");
            } else if self.at(self.k - 1) != b's' {
                self.k -= 1;
            }
        }
        if self.ends(b"eed") {
            if self.m() > 0 {
                self.k -= 1;
            }
        } else if (self.ends(b"ed") || self.ends(b"ing")) && self.vowel_in_stem() {
            self.k = self.j;
            if self.ends(b"at") {
                self.setto(b"ate");
            } else if self.ends(b"bl") {
                self.setto(b"ble");
            } else if self.ends(b"iz") {
                self.setto(b"ize");
            } else if self.doublec(self.k) {
                self.k -= 1;
                if matches!(self.at(self.k), b'l' | b's' | b'z') {
                    self.k += 1;
                }
            } else if self.m() == 1 && self.cvc(self.k) {
                self.setto(b"e");
            }
        }
    }

    /// Step 1c: terminal y -> i when there is another vowel in the stem.
    fn step1c(&mut self) {
        if self.ends(b"y") && self.vowel_in_stem() {
            self.b[self.k as usize] = b'i';
        }
    }

    /// Step 2: double suffices mapped to single ones, when m() > 0.
    // "ation" and "ator" both map to "ate" but must be tested
    // separately: `ends` records a different suffix offset j for each.
    #[allow(clippy::if_same_then_else)]
    fn step2(&mut self) {
        if self.k == 0 {
            return;
        }
        match self.at(self.k - 1) {
            b'a' => {
                if self.ends(b"ational") {
                    self.r(b"ate");
                } else if self.ends(b"tional") {
                    self.r(b"tion");
                }
            }
            b'c' => {
                if self.ends(b"enci") {
                    self.r(b"ence");
                } else if self.ends(b"anci") {
                    self.r(b"ance");
                }
            }
            b'e' if self.ends(b"izer") => {
                self.r(b"ize");
            }
            b'l' => {
                if self.ends(b"bli") {
                    self.r(b"ble"); // departure from Porter 1980 ("abli"->"able")
                } else if self.ends(b"alli") {
                    self.r(b"al");
                } else if self.ends(b"entli") {
                    self.r(b"ent");
                } else if self.ends(b"eli") {
                    self.r(b"e");
                } else if self.ends(b"ousli") {
                    self.r(b"ous");
                }
            }
            b'o' => {
                if self.ends(b"ization") {
                    self.r(b"ize");
                } else if self.ends(b"ation") {
                    self.r(b"ate");
                } else if self.ends(b"ator") {
                    self.r(b"ate");
                }
            }
            b's' => {
                if self.ends(b"alism") {
                    self.r(b"al");
                } else if self.ends(b"iveness") {
                    self.r(b"ive");
                } else if self.ends(b"fulness") {
                    self.r(b"ful");
                } else if self.ends(b"ousness") {
                    self.r(b"ous");
                }
            }
            b't' => {
                if self.ends(b"aliti") {
                    self.r(b"al");
                } else if self.ends(b"iviti") {
                    self.r(b"ive");
                } else if self.ends(b"biliti") {
                    self.r(b"ble");
                }
            }
            b'g' if self.ends(b"logi") => {
                self.r(b"log"); // departure from Porter 1980
            }
            _ => {}
        }
    }

    /// Step 3: -ic-, -full, -ness etc., when m() > 0.
    fn step3(&mut self) {
        match self.at(self.k) {
            b'e' => {
                if self.ends(b"icate") {
                    self.r(b"ic");
                } else if self.ends(b"ative") {
                    self.r(b"");
                } else if self.ends(b"alize") {
                    self.r(b"al");
                }
            }
            b'i' if self.ends(b"iciti") => {
                self.r(b"ic");
            }
            b'l' => {
                if self.ends(b"ical") {
                    self.r(b"ic");
                } else if self.ends(b"ful") {
                    self.r(b"");
                }
            }
            b's' if self.ends(b"ness") => {
                self.r(b"");
            }
            _ => {}
        }
    }

    /// Step 4: -ant, -ence etc. removed when m() > 1.
    fn step4(&mut self) {
        if self.k == 0 {
            return;
        }
        let matched = match self.at(self.k - 1) {
            b'a' => self.ends(b"al"),
            b'c' => self.ends(b"ance") || self.ends(b"ence"),
            b'e' => self.ends(b"er"),
            b'i' => self.ends(b"ic"),
            b'l' => self.ends(b"able") || self.ends(b"ible"),
            b'n' => {
                self.ends(b"ant") || self.ends(b"ement") || self.ends(b"ment") || self.ends(b"ent")
            }
            b'o' => {
                (self.ends(b"ion") && self.j >= 0 && matches!(self.at(self.j), b's' | b't'))
                    || self.ends(b"ou")
            }
            b's' => self.ends(b"ism"),
            b't' => self.ends(b"ate") || self.ends(b"iti"),
            b'u' => self.ends(b"ous"),
            b'v' => self.ends(b"ive"),
            b'z' => self.ends(b"ize"),
            _ => false,
        };
        if matched && self.m() > 1 {
            self.k = self.j;
        }
    }

    /// Step 5: final -e removal and -ll -> -l, under measure conditions.
    fn step5(&mut self) {
        self.j = self.k;
        if self.at(self.k) == b'e' {
            let a = self.m();
            if a > 1 || (a == 1 && !self.cvc(self.k - 1)) {
                self.k -= 1;
            }
        }
        if self.at(self.k) == b'l' && self.doublec(self.k) && self.m() > 1 {
            self.k -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::stem;

    /// Known vectors from Porter's paper and the reference voc/output
    /// pairs.
    #[test]
    fn reference_vectors() {
        let cases = [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("hesitanci", "hesit"),
            ("digitizer", "digit"),
            ("conformabli", "conform"),
            ("radicalli", "radic"),
            ("differentli", "differ"),
            ("vileli", "vile"),
            ("analogousli", "analog"),
            ("vietnamization", "vietnam"),
            ("predication", "predic"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formaliti", "formal"),
            ("sensitiviti", "sensit"),
            ("sensibiliti", "sensibl"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("homologou", "homolog"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ];
        for (input, want) in cases {
            assert_eq!(stem(input), want, "stem({input})");
        }
    }

    #[test]
    fn short_words_unchanged() {
        for w in ["a", "is", "be", "of"] {
            assert_eq!(stem(w), w);
        }
    }

    #[test]
    fn non_alpha_unchanged() {
        for w in ["x86", "ipv6", "p2p", "Word"] {
            assert_eq!(stem(w), w);
        }
    }

    #[test]
    fn stemming_is_idempotent_on_common_words() {
        // Not a theorem of the algorithm in general, but holds for these
        // and guards against buffer-management bugs.
        for w in ["running", "relational", "generalizations", "oscillators"] {
            let once = stem(w);
            assert_eq!(stem(&once), once, "{w} -> {once}");
        }
    }

    #[test]
    fn conflates_inflections_to_same_root() {
        assert_eq!(stem("connect"), stem("connected"));
        assert_eq!(stem("connect"), stem("connecting"));
        assert_eq!(stem("connect"), stem("connection"));
        assert_eq!(stem("connect"), stem("connections"));
    }

    #[test]
    fn never_panics_on_ascii_words() {
        for len in 1..12 {
            for seed in 0..200u32 {
                let w: String = (0..len)
                    .map(|i| {
                        let x = seed.wrapping_mul(31).wrapping_add(i * 7) % 26;
                        (b'a' + x as u8) as char
                    })
                    .collect();
                let s = stem(&w);
                assert!(!s.is_empty());
            }
        }
    }
}
