//! The per-peer inverted index.
//!
//! Each peer stores "the terms extracted from published documents in a
//! local inverted index" (§2); the vocabulary of this index is what the
//! peer's Bloom filter summarizes. The index keeps the statistics the
//! vector-space rankers (eq. 2) need:
//!
//! - `f_{D,t}`: how often term *t* occurs in document *D* (per posting);
//! - `|D|`: the number of terms in document *D*;
//! - document frequency and collection frequency per term (the paper's
//!   `f_t`; we store both interpretations — Witten et al.'s IDF uses the
//!   number of documents containing *t*).

use serde::{Deserialize, Serialize};
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// Identifier of a document within one peer's data store.
pub type DocId = u64;

/// One posting: a document and the term's frequency in it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Posting {
    /// Document containing the term.
    pub doc: DocId,
    /// Occurrences of the term in that document (`f_{D,t}`).
    pub tf: u32,
}

/// Per-term statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TermStats {
    /// Number of documents containing the term (document frequency).
    pub doc_freq: u32,
    /// Total occurrences across the collection (collection frequency).
    pub collection_freq: u64,
}

#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct TermEntry {
    postings: Vec<Posting>,
    collection_freq: u64,
}

/// An in-memory inverted index over analyzed term lists.
///
/// Terms are expected to come out of [`crate::Analyzer`]; the index does
/// no analysis of its own.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct InvertedIndex {
    terms: HashMap<String, TermEntry>,
    /// doc id -> |D| (total number of term occurrences in the document).
    doc_len: HashMap<DocId, u32>,
}

impl InvertedIndex {
    /// New empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Index a document given its analyzed terms. Replaces any existing
    /// document with the same id.
    pub fn add_document(&mut self, doc: DocId, terms: &[String]) {
        if self.doc_len.contains_key(&doc) {
            self.remove_document(doc);
        }
        let mut tf: HashMap<&str, u32> = HashMap::new();
        for t in terms {
            *tf.entry(t.as_str()).or_insert(0) += 1;
        }
        for (term, count) in tf {
            let e = self.terms.entry(term.to_string()).or_default();
            e.postings.push(Posting { doc, tf: count });
            e.collection_freq += u64::from(count);
        }
        self.doc_len.insert(doc, terms.len() as u32);
    }

    /// Remove a document. Returns `true` if it was present.
    pub fn remove_document(&mut self, doc: DocId) -> bool {
        if self.doc_len.remove(&doc).is_none() {
            return false;
        }
        self.terms.retain(|_, e| {
            if let Some(p) = e.postings.iter().position(|p| p.doc == doc) {
                e.collection_freq -= u64::from(e.postings[p].tf);
                e.postings.swap_remove(p);
            }
            !e.postings.is_empty()
        });
        true
    }

    /// Postings for a term (empty slice if absent).
    pub fn postings(&self, term: &str) -> &[Posting] {
        self.terms.get(term).map_or(&[], |e| e.postings.as_slice())
    }

    /// Term frequency of `term` in `doc`, 0 if absent.
    pub fn term_freq(&self, term: &str, doc: DocId) -> u32 {
        self.postings(term)
            .iter()
            .find(|p| p.doc == doc)
            .map_or(0, |p| p.tf)
    }

    /// Per-term statistics, `None` if the term is not in the vocabulary.
    pub fn term_stats(&self, term: &str) -> Option<TermStats> {
        self.terms.get(term).map(|e| TermStats {
            doc_freq: e.postings.len() as u32,
            collection_freq: e.collection_freq,
        })
    }

    /// Does the vocabulary contain this term?
    pub fn contains_term(&self, term: &str) -> bool {
        self.terms.contains_key(term)
    }

    /// Iterate over the vocabulary (what the Bloom filter summarizes).
    pub fn vocabulary(&self) -> impl Iterator<Item = &str> {
        self.terms.keys().map(String::as_str)
    }

    /// Vocabulary size.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Number of indexed documents.
    pub fn num_documents(&self) -> usize {
        self.doc_len.len()
    }

    /// |D|: total term occurrences in `doc`.
    pub fn doc_len(&self, doc: DocId) -> Option<u32> {
        self.doc_len.get(&doc).copied()
    }

    /// Iterate over `(doc, |D|)` pairs.
    pub fn documents(&self) -> impl Iterator<Item = (DocId, u32)> + '_ {
        self.doc_len.iter().map(|(&d, &l)| (d, l))
    }

    /// Documents containing *all* the given terms (PlanetP's exhaustive
    /// search poses "a conjunction of keys", §5.1). Returns sorted ids.
    pub fn search_conjunction(&self, terms: &[&str]) -> Vec<DocId> {
        if terms.is_empty() {
            return Vec::new();
        }
        // Start from the rarest term to keep the candidate set small.
        let mut lists: Vec<&[Posting]> = Vec::with_capacity(terms.len());
        for t in terms {
            let p = self.postings(t);
            if p.is_empty() {
                return Vec::new();
            }
            lists.push(p);
        }
        lists.sort_by_key(|l| l.len());
        let mut result: Vec<DocId> = lists[0].iter().map(|p| p.doc).collect();
        for l in &lists[1..] {
            let set: std::collections::HashSet<DocId> = l.iter().map(|p| p.doc).collect();
            result.retain(|d| set.contains(d));
            if result.is_empty() {
                break;
            }
        }
        result.sort_unstable();
        result
    }

    /// Documents containing *any* of the given terms, with the number of
    /// matching terms per document (used by ranked retrieval).
    pub fn search_disjunction(&self, terms: &[&str]) -> HashMap<DocId, u32> {
        let mut hits: HashMap<DocId, u32> = HashMap::new();
        for t in terms {
            for p in self.postings(t) {
                match hits.entry(p.doc) {
                    Entry::Occupied(mut e) => *e.get_mut() += 1,
                    Entry::Vacant(e) => {
                        e.insert(1);
                    }
                }
            }
        }
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn terms(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn add_and_query() {
        let mut idx = InvertedIndex::new();
        idx.add_document(1, &terms(&["gossip", "protocol", "gossip"]));
        idx.add_document(2, &terms(&["bloom", "filter"]));
        assert_eq!(idx.num_documents(), 2);
        assert_eq!(idx.num_terms(), 4);
        assert_eq!(idx.term_freq("gossip", 1), 2);
        assert_eq!(idx.term_freq("gossip", 2), 0);
        assert_eq!(idx.doc_len(1), Some(3));
    }

    #[test]
    fn stats_track_doc_and_collection_freq() {
        let mut idx = InvertedIndex::new();
        idx.add_document(1, &terms(&["a", "a", "b"]));
        idx.add_document(2, &terms(&["a", "c"]));
        let s = idx.term_stats("a").unwrap();
        assert_eq!(s.doc_freq, 2);
        assert_eq!(s.collection_freq, 3);
        assert!(idx.term_stats("zzz").is_none());
    }

    #[test]
    fn reindexing_replaces_old_version() {
        let mut idx = InvertedIndex::new();
        idx.add_document(1, &terms(&["old", "stuff"]));
        idx.add_document(1, &terms(&["new"]));
        assert!(!idx.contains_term("old"));
        assert!(idx.contains_term("new"));
        assert_eq!(idx.num_documents(), 1);
        assert_eq!(idx.doc_len(1), Some(1));
    }

    #[test]
    fn remove_document_cleans_vocabulary() {
        let mut idx = InvertedIndex::new();
        idx.add_document(1, &terms(&["shared", "unique1"]));
        idx.add_document(2, &terms(&["shared", "unique2"]));
        assert!(idx.remove_document(1));
        assert!(!idx.contains_term("unique1"));
        assert!(idx.contains_term("shared"));
        assert_eq!(idx.term_stats("shared").unwrap().doc_freq, 1);
        assert!(!idx.remove_document(1), "double remove is a no-op");
    }

    #[test]
    fn conjunction_requires_all_terms() {
        let mut idx = InvertedIndex::new();
        idx.add_document(1, &terms(&["p2p", "gossip"]));
        idx.add_document(2, &terms(&["p2p", "dht"]));
        idx.add_document(3, &terms(&["p2p", "gossip", "dht"]));
        assert_eq!(idx.search_conjunction(&["p2p", "gossip"]), vec![1, 3]);
        assert_eq!(idx.search_conjunction(&["p2p", "gossip", "dht"]), vec![3]);
        assert!(idx.search_conjunction(&["absent"]).is_empty());
        assert!(idx.search_conjunction(&[]).is_empty());
    }

    #[test]
    fn disjunction_counts_matching_terms() {
        let mut idx = InvertedIndex::new();
        idx.add_document(1, &terms(&["a", "b"]));
        idx.add_document(2, &terms(&["a"]));
        let hits = idx.search_disjunction(&["a", "b"]);
        assert_eq!(hits[&1], 2);
        assert_eq!(hits[&2], 1);
    }

    #[test]
    fn vocabulary_iterates_all_terms() {
        let mut idx = InvertedIndex::new();
        idx.add_document(1, &terms(&["x", "y"]));
        let mut v: Vec<_> = idx.vocabulary().collect();
        v.sort_unstable();
        assert_eq!(v, vec!["x", "y"]);
    }

    #[test]
    fn empty_index_behaves() {
        let idx = InvertedIndex::new();
        assert_eq!(idx.num_documents(), 0);
        assert_eq!(idx.num_terms(), 0);
        assert!(idx.postings("a").is_empty());
        assert!(idx.search_conjunction(&["a"]).is_empty());
    }
}
