//! Minimal XML snippet parsing.
//!
//! PlanetP's "basic unit of storage is an XML document ... Each published
//! XML document contains text and possibly links (XPointers) to external
//! files" (§2). Peers index any text in a snippet; XML tags are
//! "currently indexed simply as normal terms". We therefore need only a
//! small, strict-enough parser: elements, attributes, text, comments, and
//! CDATA — no namespaces, DTDs, or entities beyond the five predefined
//! ones.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for XmlError {}

/// An XML element: name, attributes, and children.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Element {
    /// Tag name.
    pub name: String,
    /// Attributes in document order.
    pub attributes: Vec<(String, String)>,
    /// Child nodes in document order.
    pub children: Vec<Node>,
}

/// A node in the document tree.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Node {
    /// A nested element.
    Element(Element),
    /// Character data (entity-decoded).
    Text(String),
}

/// A parsed XML document.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct XmlDocument {
    /// The root element.
    pub root: Element,
}

impl Element {
    /// Attribute value by name.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// First child element with the given tag name.
    pub fn child(&self, name: &str) -> Option<&Element> {
        self.children.iter().find_map(|n| match n {
            Node::Element(e) if e.name == name => Some(e),
            _ => None,
        })
    }

    /// All child elements with the given tag name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.children.iter().filter_map(move |n| match n {
            Node::Element(e) if e.name == name => Some(e),
            _ => None,
        })
    }

    /// Concatenated text content of this element and its descendants,
    /// separated by single spaces.
    pub fn text(&self) -> String {
        let mut out = String::new();
        self.collect_text(&mut out);
        out.trim().to_string()
    }

    fn collect_text(&self, out: &mut String) {
        for c in &self.children {
            match c {
                Node::Text(t) => {
                    if !out.is_empty() && !out.ends_with(' ') {
                        out.push(' ');
                    }
                    out.push_str(t.trim());
                }
                Node::Element(e) => e.collect_text(out),
            }
        }
    }
}

impl XmlDocument {
    /// Parse a document from a string.
    pub fn parse(input: &str) -> Result<XmlDocument, XmlError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_prolog();
        let root = p.parse_element()?;
        p.skip_misc();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing content after root element"));
        }
        Ok(XmlDocument { root })
    }

    /// All text content of the document (what PlanetP indexes).
    pub fn text(&self) -> String {
        self.root.text()
    }

    /// All terms PlanetP would index: text content plus tag names
    /// ("XML tags are indexed simply as normal terms", §2) plus
    /// attribute values.
    pub fn indexable_text(&self) -> String {
        let mut out = String::new();
        fn walk(e: &Element, out: &mut String) {
            out.push_str(&e.name);
            out.push(' ');
            for (_, v) in &e.attributes {
                out.push_str(v);
                out.push(' ');
            }
            for c in &e.children {
                match c {
                    Node::Text(t) => {
                        out.push_str(t);
                        out.push(' ');
                    }
                    Node::Element(child) => walk(child, out),
                }
            }
        }
        walk(&self.root, &mut out);
        out.trim().to_string()
    }

    /// `href` attribute values anywhere in the tree — PlanetP follows
    /// these links to index external files of known types.
    pub fn links(&self) -> Vec<&str> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a Element, out: &mut Vec<&'a str>) {
            if let Some(h) = e.attr("href") {
                out.push(h);
            }
            for c in &e.children {
                if let Node::Element(child) = c {
                    walk(child, out);
                }
            }
        }
        walk(&self.root, &mut out);
        out
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> XmlError {
        XmlError {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &[u8]) -> bool {
        self.bytes[self.pos..].starts_with(s)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    /// Skip the XML declaration, comments, and whitespace before the root.
    fn skip_prolog(&mut self) {
        loop {
            self.skip_ws();
            if self.starts_with(b"<?") {
                if let Some(end) = find(self.bytes, self.pos, b"?>") {
                    self.pos = end + 2;
                    continue;
                }
                self.pos = self.bytes.len();
                return;
            }
            if self.starts_with(b"<!--") {
                if let Some(end) = find(self.bytes, self.pos + 4, b"-->") {
                    self.pos = end + 3;
                    continue;
                }
                self.pos = self.bytes.len();
                return;
            }
            return;
        }
    }

    /// Skip comments and whitespace after the root.
    fn skip_misc(&mut self) {
        loop {
            self.skip_ws();
            if self.starts_with(b"<!--") {
                if let Some(end) = find(self.bytes, self.pos + 4, b"-->") {
                    self.pos = end + 3;
                    continue;
                }
            }
            return;
        }
    }

    fn parse_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected name"));
        }
        Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    fn parse_element(&mut self) -> Result<Element, XmlError> {
        if self.peek() != Some(b'<') {
            return Err(self.err("expected '<'"));
        }
        self.pos += 1;
        let name = self.parse_name()?;
        let mut attributes = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() != Some(b'>') {
                        return Err(self.err("expected '>' after '/'"));
                    }
                    self.pos += 1;
                    return Ok(Element {
                        name,
                        attributes,
                        children: Vec::new(),
                    });
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let aname = self.parse_name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return Err(self.err("expected '=' in attribute"));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let quote = self.peek();
                    if !matches!(quote, Some(b'"' | b'\'')) {
                        return Err(self.err("expected quoted attribute value"));
                    }
                    let q = quote.expect("checked above");
                    self.pos += 1;
                    let start = self.pos;
                    while self.peek().is_some_and(|c| c != q) {
                        self.pos += 1;
                    }
                    if self.peek() != Some(q) {
                        return Err(self.err("unterminated attribute value"));
                    }
                    let raw = String::from_utf8_lossy(&self.bytes[start..self.pos]);
                    self.pos += 1;
                    attributes.push((aname, decode_entities(&raw)));
                }
                None => return Err(self.err("unexpected end of input in tag")),
            }
        }
        // Children until the matching close tag.
        let mut children = Vec::new();
        loop {
            if self.starts_with(b"</") {
                self.pos += 2;
                let close = self.parse_name()?;
                if close != name {
                    return Err(self.err(&format!(
                        "mismatched close tag: expected </{name}>, got </{close}>"
                    )));
                }
                self.skip_ws();
                if self.peek() != Some(b'>') {
                    return Err(self.err("expected '>' in close tag"));
                }
                self.pos += 1;
                return Ok(Element {
                    name,
                    attributes,
                    children,
                });
            }
            if self.starts_with(b"<!--") {
                let end = find(self.bytes, self.pos + 4, b"-->")
                    .ok_or_else(|| self.err("unterminated comment"))?;
                self.pos = end + 3;
                continue;
            }
            if self.starts_with(b"<![CDATA[") {
                let start = self.pos + 9;
                let end = find(self.bytes, start, b"]]>")
                    .ok_or_else(|| self.err("unterminated CDATA"))?;
                let text = String::from_utf8_lossy(&self.bytes[start..end]).into_owned();
                if !text.is_empty() {
                    children.push(Node::Text(text));
                }
                self.pos = end + 3;
                continue;
            }
            match self.peek() {
                Some(b'<') => {
                    children.push(Node::Element(self.parse_element()?));
                }
                Some(_) => {
                    let start = self.pos;
                    while self.peek().is_some_and(|c| c != b'<') {
                        self.pos += 1;
                    }
                    let raw = String::from_utf8_lossy(&self.bytes[start..self.pos]);
                    let text = decode_entities(&raw);
                    if !text.trim().is_empty() {
                        children.push(Node::Text(text));
                    }
                }
                None => return Err(self.err("unexpected end of input in element")),
            }
        }
    }
}

fn find(haystack: &[u8], from: usize, needle: &[u8]) -> Option<usize> {
    if from > haystack.len() {
        return None;
    }
    haystack[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|p| p + from)
}

/// Decode the five predefined XML entities (and leave anything else as
/// literal text — robustness beats strictness for snippets).
fn decode_entities(s: &str) -> String {
    if !s.contains('&') {
        return s.to_string();
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(i) = rest.find('&') {
        out.push_str(&rest[..i]);
        rest = &rest[i..];
        let decoded = [
            ("&amp;", '&'),
            ("&lt;", '<'),
            ("&gt;", '>'),
            ("&quot;", '"'),
            ("&apos;", '\''),
        ]
        .iter()
        .find(|(e, _)| rest.starts_with(e));
        match decoded {
            Some((e, c)) => {
                out.push(*c);
                rest = &rest[e.len()..];
            }
            None => {
                out.push('&');
                rest = &rest[1..];
            }
        }
    }
    out.push_str(rest);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_document() {
        let doc = XmlDocument::parse(
            r#"<doc id="42"><title>Gossip Protocols</title><body>Epidemic algorithms rule.</body></doc>"#,
        )
        .unwrap();
        assert_eq!(doc.root.name, "doc");
        assert_eq!(doc.root.attr("id"), Some("42"));
        assert_eq!(doc.root.child("title").unwrap().text(), "Gossip Protocols");
        assert_eq!(doc.text(), "Gossip Protocols Epidemic algorithms rule.");
    }

    #[test]
    fn self_closing_and_nested() {
        let doc = XmlDocument::parse("<a><b/><c><d>deep</d></c></a>").unwrap();
        assert!(doc.root.child("b").unwrap().children.is_empty());
        assert_eq!(
            doc.root.child("c").unwrap().child("d").unwrap().text(),
            "deep"
        );
    }

    #[test]
    fn declaration_and_comments_skipped() {
        let doc =
            XmlDocument::parse("<?xml version=\"1.0\"?><!-- hi --><r>x</r><!-- bye -->").unwrap();
        assert_eq!(doc.text(), "x");
    }

    #[test]
    fn cdata_preserved_verbatim() {
        let doc = XmlDocument::parse("<r><![CDATA[a < b && c]]></r>").unwrap();
        assert_eq!(doc.text(), "a < b && c");
    }

    #[test]
    fn entities_decoded() {
        let doc = XmlDocument::parse(
            r#"<r attr="x &amp; y">&lt;tag&gt; &quot;q&quot; &apos;a&apos;</r>"#,
        )
        .unwrap();
        assert_eq!(doc.root.attr("attr"), Some("x & y"));
        assert_eq!(doc.text(), "<tag> \"q\" 'a'");
    }

    #[test]
    fn unknown_entity_left_literal() {
        let doc = XmlDocument::parse("<r>&nbsp; x</r>").unwrap();
        assert_eq!(doc.text(), "&nbsp; x");
    }

    #[test]
    fn links_extracted() {
        let doc = XmlDocument::parse(
            r#"<doc><file href="http://peer/a.pdf"/><nested><file href="b.ps"/></nested></doc>"#,
        )
        .unwrap();
        assert_eq!(doc.links(), vec!["http://peer/a.pdf", "b.ps"]);
    }

    #[test]
    fn indexable_text_includes_tags_and_attrs() {
        let doc = XmlDocument::parse(r#"<paper year="1987">epidemic</paper>"#).unwrap();
        let t = doc.indexable_text();
        assert!(t.contains("paper") && t.contains("1987") && t.contains("epidemic"));
    }

    #[test]
    fn mismatched_tags_rejected() {
        let e = XmlDocument::parse("<a><b></a></b>").unwrap_err();
        assert!(e.message.contains("mismatched"), "{e}");
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(XmlDocument::parse("<a/>junk").is_err());
    }

    #[test]
    fn unterminated_input_rejected() {
        assert!(XmlDocument::parse("<a><b>").is_err());
        assert!(XmlDocument::parse("<a attr=\"x>").is_err());
    }

    #[test]
    fn whitespace_only_text_dropped() {
        let doc = XmlDocument::parse("<a>  <b>x</b>  </a>").unwrap();
        assert_eq!(doc.root.children.len(), 1);
    }

    #[test]
    fn attribute_order_preserved_and_duplicates_kept() {
        let doc = XmlDocument::parse(r#"<a z="1" y="2"/>"#).unwrap();
        assert_eq!(
            doc.root.attributes,
            vec![("z".into(), "1".into()), ("y".into(), "2".into())]
        );
    }

    #[test]
    fn children_named_filters() {
        let doc = XmlDocument::parse("<a><k>1</k><j>x</j><k>2</k></a>").unwrap();
        let ks: Vec<_> = doc.root.children_named("k").map(|e| e.text()).collect();
        assert_eq!(ks, vec!["1", "2"]);
    }
}
