//! Property-based tests for the text-analysis substrate.

use planetp_index::{stem, tokenize, Analyzer, InvertedIndex, XmlDocument};
use proptest::prelude::*;

proptest! {
    /// The tokenizer never panics and only emits lowercase alphanumeric
    /// tokens of length >= 2 containing at least one letter.
    #[test]
    fn tokenizer_output_well_formed(text in ".{0,400}") {
        for tok in tokenize(&text) {
            prop_assert!(tok.len() >= 2);
            prop_assert!(tok.bytes().all(|b| b.is_ascii_lowercase() || b.is_ascii_digit()));
            prop_assert!(tok.bytes().any(|b| b.is_ascii_lowercase()));
        }
    }

    /// Tokenization is idempotent under re-joining: tokenizing the
    /// joined tokens yields the same tokens.
    #[test]
    fn tokenizer_stable_under_rejoin(text in "[a-zA-Z0-9 ,.!?-]{0,200}") {
        let once = tokenize(&text);
        let twice = tokenize(&once.join(" "));
        prop_assert_eq!(once, twice);
    }

    /// The stemmer never panics, never returns an empty string for a
    /// non-empty input, and never grows a pure-ascii-lowercase word by
    /// more than the `e`-restoration cases allow.
    #[test]
    fn stemmer_total_and_bounded(word in "[a-z]{1,20}") {
        let s = stem(&word);
        prop_assert!(!s.is_empty());
        prop_assert!(s.len() <= word.len() + 1, "{word} -> {s}");
        prop_assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
    }

    /// The invariant retrieval depends on: documents and queries are
    /// analyzed by the same deterministic, case-insensitive pipeline —
    /// the same text always produces the same terms, regardless of
    /// capitalization. (Note the pipeline is *not* idempotent on its
    /// own output: stemming maps "eas" to "ea"; that is fine because
    /// queries arrive as raw text, never as pre-analyzed terms.)
    #[test]
    fn analyzer_deterministic_and_case_insensitive(text in "[a-zA-Z ]{0,200}") {
        let a = Analyzer::new();
        let base = a.analyze(&text);
        prop_assert_eq!(&base, &a.analyze(&text), "non-deterministic");
        prop_assert_eq!(&base, &a.analyze(&text.to_uppercase()));
        prop_assert_eq!(&base, &a.analyze(&text.to_lowercase()));
        // Stop-word removal runs before stemming, so no *input* stop
        // word survives — but a stem may itself collide with a stop
        // word ("mys" -> "my"); only emptiness is forbidden.
        for t in &base {
            prop_assert!(!t.is_empty());
        }
    }

    /// Inverted index bookkeeping: after arbitrary adds and removes,
    /// statistics stay consistent with the surviving documents.
    #[test]
    fn index_stats_consistent(
        docs in prop::collection::vec(
            prop::collection::vec("[a-f]{1,4}", 1..20),
            1..12,
        ),
        remove_mask in prop::collection::vec(any::<bool>(), 12),
    ) {
        let mut idx = InvertedIndex::new();
        for (i, terms) in docs.iter().enumerate() {
            idx.add_document(i as u64, terms);
        }
        let mut survivors = Vec::new();
        for (i, terms) in docs.iter().enumerate() {
            if remove_mask.get(i).copied().unwrap_or(false) {
                prop_assert!(idx.remove_document(i as u64));
            } else {
                survivors.push((i as u64, terms));
            }
        }
        prop_assert_eq!(idx.num_documents(), survivors.len());
        for (id, terms) in &survivors {
            prop_assert_eq!(idx.doc_len(*id), Some(terms.len() as u32));
            for t in terms.iter() {
                prop_assert!(idx.contains_term(t));
                prop_assert!(idx.term_freq(t, *id) >= 1);
            }
        }
        // Every vocabulary term must be backed by at least one survivor.
        for term in idx.vocabulary() {
            prop_assert!(
                survivors.iter().any(|(_, ts)| ts.iter().any(|t| t == term)),
                "dangling vocabulary term {term}"
            );
        }
    }

    /// Conjunction search results contain all query terms.
    #[test]
    fn conjunction_is_sound(
        docs in prop::collection::vec(
            prop::collection::vec("[a-d]{1,3}", 1..10),
            1..10,
        ),
        query in prop::collection::vec("[a-d]{1,3}", 1..3),
    ) {
        let mut idx = InvertedIndex::new();
        for (i, terms) in docs.iter().enumerate() {
            idx.add_document(i as u64, terms);
        }
        let refs: Vec<&str> = query.iter().map(String::as_str).collect();
        for doc in idx.search_conjunction(&refs) {
            for q in &refs {
                prop_assert!(
                    docs[doc as usize].iter().any(|t| t == q),
                    "doc {doc} missing term {q}"
                );
            }
        }
    }

    /// XML escaping roundtrip: text content embedded with the five
    /// predefined entities parses back to the original.
    #[test]
    fn xml_text_roundtrip(content in "[ -~]{0,100}") {
        let escaped = content
            .replace('&', "&amp;")
            .replace('<', "&lt;")
            .replace('>', "&gt;");
        let xml = format!("<d>{escaped}</d>");
        let doc = XmlDocument::parse(&xml).expect("escaped content parses");
        // Whitespace-only content collapses to empty text (dropped).
        if content.trim().is_empty() {
            prop_assert_eq!(doc.text(), "");
        } else {
            prop_assert_eq!(doc.text(), content.trim());
        }
    }
}
