//! Lock-cheap metrics registry.
//!
//! A [`Registry`] is a named collection of [`Counter`]s, [`Gauge`]s and
//! fixed-bucket [`Histogram`]s. Handles are `Arc`s around atomics:
//! recording a sample is one or two relaxed atomic ops and never takes
//! the registry lock. The registry lock (a `std::sync::RwLock` around a
//! `BTreeMap`) is touched only on registration and on
//! [`Registry::snapshot`], both of which are cold paths.
//!
//! Cloning a `Registry` or any handle shares the underlying storage, so
//! subsystems can keep their own handles while one snapshot sees
//! everything.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::snapshot::{HistogramSnapshot, MetricValue, MetricsSnapshot};

/// Default upper bounds (milliseconds) for latency histograms.
pub const LATENCY_MS_BUCKETS: &[u64] = &[
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 30_000,
];

/// Default upper bounds (bytes) for size histograms.
pub const SIZE_BYTES_BUCKETS: &[u64] = &[
    64, 256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576, 4_194_304, 16_777_216,
];

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not registered anywhere (e.g. before a registry is
    /// attached). Recording into it is valid; it just won't appear in
    /// any snapshot.
    pub fn detached() -> Self {
        Self::default()
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A gauge not registered anywhere.
    pub fn detached() -> Self {
        Self::default()
    }

    /// Set to an absolute value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Shared storage for a fixed-bucket histogram.
///
/// `bounds[i]` is the inclusive upper bound of bucket `i`; the final
/// bucket (index `bounds.len()`) is the overflow bucket.
#[derive(Debug)]
pub struct HistogramCore {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl HistogramCore {
    fn new(bounds: &[u64]) -> Self {
        let mut sorted: Vec<u64> = bounds.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let buckets = (0..=sorted.len()).map(|_| AtomicU64::new(0)).collect();
        Self {
            bounds: sorted,
            buckets,
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    fn observe(&self, v: u64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// A fixed-bucket histogram of `u64` samples (latencies, sizes).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// A histogram not registered anywhere.
    pub fn detached(bounds: &[u64]) -> Self {
        Self(Arc::new(HistogramCore::new(bounds)))
    }

    /// Record one sample.
    pub fn observe(&self, v: u64) {
        self.0.observe(v);
    }

    /// Total number of samples recorded.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples recorded.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Clone)]
enum Slot {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A named collection of metrics. Cloning shares the storage.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    slots: Arc<RwLock<BTreeMap<String, Slot>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter registered under `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut slots = self.slots.write().unwrap();
        match slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Counter(Counter::default()))
        {
            Slot::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Get or create the gauge registered under `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut slots = self.slots.write().unwrap();
        match slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Gauge(Gauge::default()))
        {
            Slot::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Get or create the histogram registered under `name`. `bounds` is
    /// used only on first registration; later callers share the
    /// existing buckets.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        let mut slots = self.slots.write().unwrap();
        match slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Histogram(Histogram::detached(bounds)))
        {
            Slot::Histogram(h) => h.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// A family of counters sharing a prefix: `family.inc("rumor")`
    /// records into the counter named `<prefix>.rumor`. Labels must be
    /// `&'static str` so lookups after the first are a small-map read.
    pub fn counter_family(&self, prefix: &str) -> CounterFamily {
        CounterFamily {
            registry: self.clone(),
            prefix: prefix.to_string(),
            cache: Arc::new(RwLock::new(BTreeMap::new())),
        }
    }

    /// Materialize every registered metric into a serializable
    /// snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let slots = self.slots.read().unwrap();
        let mut snap = MetricsSnapshot::default();
        for (name, slot) in slots.iter() {
            let value = match slot {
                Slot::Counter(c) => MetricValue::Counter { value: c.get() },
                Slot::Gauge(g) => MetricValue::Gauge { value: g.get() },
                Slot::Histogram(h) => MetricValue::Histogram {
                    hist: h.0.snapshot(),
                },
            };
            snap.metrics.insert(name.clone(), value);
        }
        snap
    }
}

/// Counters keyed by a `&'static str` label under a shared prefix.
#[derive(Debug, Clone)]
pub struct CounterFamily {
    registry: Registry,
    prefix: String,
    cache: Arc<RwLock<BTreeMap<&'static str, Counter>>>,
}

impl CounterFamily {
    /// Handle for the counter labeled `label` (registered as
    /// `<prefix>.<label>`).
    pub fn get(&self, label: &'static str) -> Counter {
        if let Some(c) = self.cache.read().unwrap().get(label) {
            return c.clone();
        }
        let c = self.registry.counter(&format!("{}.{}", self.prefix, label));
        self.cache.write().unwrap().insert(label, c.clone());
        c
    }

    /// Increment `<prefix>.<label>` by one.
    pub fn inc(&self, label: &'static str) {
        self.get(label).inc();
    }

    /// Increment `<prefix>.<label>` by `n`.
    pub fn add(&self, label: &'static str, n: u64) {
        self.get(label).add(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_shares_storage_across_handles() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        assert_eq!(reg.snapshot().counter("x"), 4);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let reg = Registry::new();
        let g = reg.gauge("depth");
        g.set(10);
        g.add(-4);
        assert_eq!(g.get(), 6);
        assert_eq!(reg.snapshot().gauge("depth"), 6);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let h = Histogram::detached(&[10, 100]);
        h.observe(5); // bucket 0 (<= 10)
        h.observe(10); // bucket 0 (inclusive upper bound)
        h.observe(50); // bucket 1
        h.observe(1_000); // overflow
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1_065);
        let reg = Registry::new();
        let rh = reg.histogram("sizes", &[10, 100]);
        rh.observe(7);
        let snap = reg.snapshot();
        let hist = snap.histogram("sizes").expect("registered");
        assert_eq!(hist.bounds, vec![10, 100]);
        assert_eq!(hist.counts, vec![1, 0, 0]);
        assert_eq!(hist.count, 1);
    }

    #[test]
    fn family_registers_prefixed_counters() {
        let reg = Registry::new();
        let fam = reg.counter_family("msgs");
        fam.inc("rumor");
        fam.add("rumor", 2);
        fam.inc("ae_ping");
        let snap = reg.snapshot();
        assert_eq!(snap.counter("msgs.rumor"), 3);
        assert_eq!(snap.counter("msgs.ae_ping"), 1);
        assert_eq!(snap.sum_counters("msgs."), 4);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("x");
        reg.gauge("x");
    }
}
