//! Serializable point-in-time views of a [`crate::Registry`].
//!
//! A [`MetricsSnapshot`] is the exchange format of the observability
//! layer: the `planetp stats` CLI prints one, the `GetStats` wire RPC
//! ships one, integration tests diff two of them. The schema is
//! deliberately simple JSON — a map from dotted metric name to a tagged
//! value — so it survives version skew and is trivially greppable.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

/// Frozen state of one histogram: `counts[i]` is the number of samples
/// `<= bounds[i]`, with `counts[bounds.len()]` the overflow bucket.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    pub bounds: Vec<u64>,
    pub counts: Vec<u64>,
    pub sum: u64,
    pub count: u64,
}

impl HistogramSnapshot {
    /// Mean of all recorded samples, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    fn diff(&self, earlier: &Self) -> Self {
        if self.bounds != earlier.bounds || self.counts.len() != earlier.counts.len() {
            return self.clone();
        }
        Self {
            bounds: self.bounds.clone(),
            counts: self
                .counts
                .iter()
                .zip(&earlier.counts)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            sum: self.sum.saturating_sub(earlier.sum),
            count: self.count.saturating_sub(earlier.count),
        }
    }

    fn merge(&self, other: &Self) -> Self {
        if self.bounds != other.bounds || self.counts.len() != other.counts.len() {
            return self.clone();
        }
        Self {
            bounds: self.bounds.clone(),
            counts: self
                .counts
                .iter()
                .zip(&other.counts)
                .map(|(a, b)| a + b)
                .collect(),
            sum: self.sum + other.sum,
            count: self.count + other.count,
        }
    }
}

/// One metric's frozen value, tagged with its kind.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum MetricValue {
    Counter { value: u64 },
    Gauge { value: i64 },
    Histogram { hist: HistogramSnapshot },
}

/// A point-in-time view of every metric in a registry.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    pub metrics: BTreeMap<String, MetricValue>,
}

impl MetricsSnapshot {
    /// Counter value, or 0 when absent or not a counter.
    pub fn counter(&self, name: &str) -> u64 {
        match self.metrics.get(name) {
            Some(MetricValue::Counter { value }) => *value,
            _ => 0,
        }
    }

    /// Gauge value, or 0 when absent or not a gauge.
    pub fn gauge(&self, name: &str) -> i64 {
        match self.metrics.get(name) {
            Some(MetricValue::Gauge { value }) => *value,
            _ => 0,
        }
    }

    /// Histogram snapshot, or `None` when absent or not a histogram.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.metrics.get(name) {
            Some(MetricValue::Histogram { hist }) => Some(hist),
            _ => None,
        }
    }

    /// Sum of every counter whose name starts with `prefix` — the
    /// natural way to total a [`crate::CounterFamily`] (use a prefix
    /// ending in `.`).
    pub fn sum_counters(&self, prefix: &str) -> u64 {
        self.metrics
            .iter()
            .filter(|(name, _)| name.starts_with(prefix))
            .map(|(_, v)| match v {
                MetricValue::Counter { value } => *value,
                _ => 0,
            })
            .sum()
    }

    /// What happened between `earlier` and `self`: counters and
    /// histograms subtract (saturating, so restarts don't underflow);
    /// gauges keep their current value. Metrics present only in
    /// `earlier` are dropped; metrics new in `self` pass through.
    pub fn diff(&self, earlier: &Self) -> Self {
        let mut out = Self::default();
        for (name, value) in &self.metrics {
            let diffed = match (value, earlier.metrics.get(name)) {
                (
                    MetricValue::Counter { value: now },
                    Some(MetricValue::Counter { value: was }),
                ) => MetricValue::Counter {
                    value: now.saturating_sub(*was),
                },
                (
                    MetricValue::Histogram { hist: now },
                    Some(MetricValue::Histogram { hist: was }),
                ) => MetricValue::Histogram {
                    hist: now.diff(was),
                },
                _ => value.clone(),
            };
            out.metrics.insert(name.clone(), diffed);
        }
        out
    }

    /// Pointwise sum with `other` — used to aggregate per-node
    /// snapshots into one community-wide view. Counters and histograms
    /// add; gauges add (a merged gauge is a total, e.g. total directory
    /// entries across peers).
    pub fn merge(&self, other: &Self) -> Self {
        let mut out = self.clone();
        for (name, value) in &other.metrics {
            let merged = match (out.metrics.get(name), value) {
                (Some(MetricValue::Counter { value: a }), MetricValue::Counter { value: b }) => {
                    MetricValue::Counter { value: a + b }
                }
                (Some(MetricValue::Gauge { value: a }), MetricValue::Gauge { value: b }) => {
                    MetricValue::Gauge { value: a + b }
                }
                (Some(MetricValue::Histogram { hist: a }), MetricValue::Histogram { hist: b }) => {
                    MetricValue::Histogram { hist: a.merge(b) }
                }
                _ => value.clone(),
            };
            out.metrics.insert(name.clone(), merged);
        }
        out
    }

    /// Serialize to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serializes")
    }

    /// Parse a snapshot from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Compact single-metric-per-line rendering for humans.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.metrics {
            match value {
                MetricValue::Counter { value } => {
                    let _ = writeln!(out, "{name:<40} {value}");
                }
                MetricValue::Gauge { value } => {
                    let _ = writeln!(out, "{name:<40} {value} (gauge)");
                }
                MetricValue::Histogram { hist } => {
                    let _ = writeln!(
                        out,
                        "{name:<40} count={} sum={} mean={:.1}",
                        hist.count,
                        hist.sum,
                        hist.mean()
                    );
                }
            }
        }
        // Derived summary: how much probing the Bloofi tree saved, if
        // the node ran one.
        let lookups = self.counter(crate::names::BLOOMTREE_LOOKUPS);
        if lookups > 0 {
            let saved = self.counter(crate::names::BLOOMTREE_PROBES_SAVED);
            let kept = self.counter(crate::names::BLOOMTREE_CANDIDATES);
            let total = saved + kept;
            let pct = if total > 0 {
                100.0 * saved as f64 / total as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "bloom tree: pruned {pct:.1}% of per-peer filter probes \
                 ({lookups} lookups, height {})",
                self.gauge(crate::names::BLOOMTREE_HEIGHT)
            );
        }
        // Derived summary: what delta gossip saved versus shipping full
        // filters, if any bloom updates went out as diffs.
        let delta_sent = self.counter(crate::names::GOSSIP_DELTA_SENT);
        let full_fallbacks = self.counter(crate::names::GOSSIP_DELTA_FULL_FALLBACKS);
        if delta_sent + full_fallbacks > 0 {
            let saved = self.counter(crate::names::GOSSIP_DELTA_BYTES_SAVED);
            let _ = writeln!(
                out,
                "delta gossip: {delta_sent} delta rumors saved {:.1} KB \
                 ({} applied, {} chain breaks, {full_fallbacks} full fallbacks)",
                saved as f64 / 1024.0,
                self.counter(crate::names::GOSSIP_DELTA_APPLIED),
                self.counter(crate::names::GOSSIP_DELTA_CHAIN_BREAKS)
            );
        }
        // Derived summary: how often the connection pool avoided a TCP
        // connect, if the node ran one.
        let opened = self.counter(crate::names::CONN_OPENED);
        let reused = self.counter(crate::names::CONN_REUSED);
        if opened + reused > 0 {
            let pct = 100.0 * reused as f64 / (opened + reused) as f64;
            let _ = writeln!(
                out,
                "conn pool: reused {pct:.1}% of contacts ({opened} opened, \
                 {} stale reconnects, {} reaped)",
                self.counter(crate::names::CONN_STALE_RECONNECTS),
                self.counter(crate::names::CONN_REAPED)
            );
        }
        // Derived summary: overload protection, if the admission gate
        // handled any traffic or Busy replies moved either way.
        let admitted = self.counter(crate::names::ADMISSION_ADMITTED);
        let shed = self.counter(crate::names::ADMISSION_SHED);
        let expired = self.counter(crate::names::ADMISSION_EXPIRED);
        if admitted + shed + expired > 0 {
            let total = admitted + shed + expired;
            let shed_pct = 100.0 * shed as f64 / total as f64;
            let wait = self
                .histogram(crate::names::ADMISSION_QUEUE_WAIT_MS)
                .map(HistogramSnapshot::mean)
                .unwrap_or(0.0);
            let _ = writeln!(
                out,
                "admission: shed {shed_pct:.1}% of {total} requests \
                 ({admitted} admitted, {expired} expired, mean queue wait \
                 {wait:.1} ms)"
            );
        }
        let busy_sent = self.counter(crate::names::BUSY_SENT);
        let busy_received = self.counter(crate::names::BUSY_RECEIVED);
        let throttled = self.counter(crate::names::BUSY_THROTTLED_PEERS);
        if busy_sent + busy_received + throttled > 0 {
            let _ = writeln!(
                out,
                "busy: sent {busy_sent}, received {busy_received}, \
                 {throttled} contacts skipped by the busy throttle"
            );
        }
        // Derived summary: replication activity, if the node pushed,
        // hosted, or recovered anything through replicas.
        let pushes = self.counter(crate::names::REPLICA_PUSHES);
        let accepts = self.counter(crate::names::REPLICA_ACCEPTS);
        let recovered = self.counter(crate::names::REPLICA_RECOVERED_HITS);
        if pushes + accepts + recovered > 0 {
            let _ = writeln!(
                out,
                "replication: hosting {} replicas ({:.1} KB; {accepts} \
                 accepted / {pushes} pushed, {} evicted, {recovered} hits \
                 recovered via replicas)",
                self.gauge(crate::names::REPLICA_HOSTED),
                self.counter(crate::names::REPLICA_BYTES) as f64 / 1024.0,
                self.counter(crate::names::REPLICA_EVICTIONS)
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample() -> Registry {
        let reg = Registry::new();
        reg.counter("a").add(10);
        reg.gauge("g").set(-2);
        reg.histogram("h", &[5, 50]).observe(3);
        reg
    }

    #[test]
    fn json_round_trip() {
        let snap = sample().snapshot();
        let json = snap.to_json();
        let back = MetricsSnapshot::from_json(&json).expect("parses");
        assert_eq!(snap, back);
    }

    #[test]
    fn diff_subtracts_counters_keeps_gauges() {
        let reg = sample();
        let before = reg.snapshot();
        reg.counter("a").add(5);
        reg.gauge("g").set(7);
        reg.histogram("h", &[5, 50]).observe(40);
        let after = reg.snapshot();
        let d = after.diff(&before);
        assert_eq!(d.counter("a"), 5);
        assert_eq!(d.gauge("g"), 7);
        let h = d.histogram("h").expect("present");
        assert_eq!(h.count, 1);
        assert_eq!(h.counts, vec![0, 1, 0]);
    }

    #[test]
    fn merge_sums_everything() {
        let a = sample().snapshot();
        let b = sample().snapshot();
        let m = a.merge(&b);
        assert_eq!(m.counter("a"), 20);
        assert_eq!(m.gauge("g"), -4);
        assert_eq!(m.histogram("h").expect("present").count, 2);
    }

    #[test]
    fn diff_is_saturating_after_restart() {
        let big = sample().snapshot();
        let reg = Registry::new();
        reg.counter("a").add(1); // fresh process, counter restarted
        let small = reg.snapshot();
        assert_eq!(small.diff(&big).counter("a"), 0);
    }

    #[test]
    fn human_rendering_names_every_metric() {
        let text = sample().snapshot().render_human();
        assert!(text.contains("a"));
        assert!(text.contains("(gauge)"));
        assert!(text.contains("count=1"));
        assert!(
            !text.contains("bloom tree:"),
            "no tree summary without tree lookups"
        );
        assert!(
            !text.contains("conn pool:"),
            "no pool summary without pooled contacts"
        );
        assert!(
            !text.contains("delta gossip:"),
            "no delta summary without delta activity"
        );
    }

    #[test]
    fn render_human_summarizes_delta_savings() {
        let reg = Registry::new();
        reg.counter(crate::names::GOSSIP_DELTA_SENT).add(40);
        reg.counter(crate::names::GOSSIP_DELTA_APPLIED).add(38);
        reg.counter(crate::names::GOSSIP_DELTA_CHAIN_BREAKS).add(2);
        reg.counter(crate::names::GOSSIP_DELTA_FULL_FALLBACKS)
            .add(3);
        reg.counter(crate::names::GOSSIP_DELTA_BYTES_SAVED)
            .add(10 * 1024);
        let text = reg.snapshot().render_human();
        assert!(
            text.contains("delta gossip: 40 delta rumors saved 10.0 KB"),
            "{text}"
        );
        assert!(
            text.contains("38 applied, 2 chain breaks, 3 full fallbacks"),
            "{text}"
        );
    }

    #[test]
    fn render_human_summarizes_conn_reuse() {
        let reg = Registry::new();
        reg.counter(crate::names::CONN_OPENED).add(5);
        reg.counter(crate::names::CONN_REUSED).add(15);
        reg.counter(crate::names::CONN_STALE_RECONNECTS).add(2);
        reg.counter(crate::names::CONN_REAPED).add(3);
        let text = reg.snapshot().render_human();
        assert!(text.contains("conn pool: reused 75.0%"), "{text}");
        assert!(
            text.contains("5 opened, 2 stale reconnects, 3 reaped"),
            "{text}"
        );
    }

    #[test]
    fn render_human_summarizes_replication() {
        let reg = Registry::new();
        reg.counter(crate::names::REPLICA_PUSHES).add(9);
        reg.counter(crate::names::REPLICA_ACCEPTS).add(7);
        reg.counter(crate::names::REPLICA_EVICTIONS).add(2);
        reg.counter(crate::names::REPLICA_BYTES).add(2048);
        reg.counter(crate::names::REPLICA_RECOVERED_HITS).add(4);
        reg.gauge(crate::names::REPLICA_HOSTED).set(5);
        let text = reg.snapshot().render_human();
        assert!(text.contains("replication: hosting 5 replicas"), "{text}");
        assert!(text.contains("7 accepted / 9 pushed"), "{text}");
        assert!(text.contains("4 hits recovered via replicas"), "{text}");
        // Quiet nodes stay quiet.
        let quiet = Registry::new().snapshot().render_human();
        assert!(!quiet.contains("replication:"), "{quiet}");
    }

    #[test]
    fn render_human_summarizes_admission_shedding() {
        let reg = Registry::new();
        reg.counter(crate::names::ADMISSION_ADMITTED).add(75);
        reg.counter(crate::names::ADMISSION_SHED).add(20);
        reg.counter(crate::names::ADMISSION_EXPIRED).add(5);
        reg.histogram(crate::names::ADMISSION_QUEUE_WAIT_MS, &[5, 50])
            .observe(4);
        reg.counter(crate::names::BUSY_SENT).add(20);
        reg.counter(crate::names::BUSY_RECEIVED).add(3);
        reg.counter(crate::names::BUSY_THROTTLED_PEERS).add(2);
        let text = reg.snapshot().render_human();
        assert!(
            text.contains("admission: shed 20.0% of 100 requests"),
            "{text}"
        );
        assert!(text.contains("75 admitted, 5 expired"), "{text}");
        assert!(
            text.contains("busy: sent 20, received 3, 2 contacts skipped"),
            "{text}"
        );
        // Quiet nodes stay quiet.
        let quiet = Registry::new().snapshot().render_human();
        assert!(!quiet.contains("admission:"), "{quiet}");
        assert!(!quiet.contains("busy:"), "{quiet}");
    }

    #[test]
    fn render_human_summarizes_tree_pruning() {
        let reg = Registry::new();
        reg.counter(crate::names::BLOOMTREE_LOOKUPS).add(4);
        reg.counter(crate::names::BLOOMTREE_PROBES_SAVED).add(75);
        reg.counter(crate::names::BLOOMTREE_CANDIDATES).add(25);
        reg.gauge(crate::names::BLOOMTREE_HEIGHT).set(3);
        let text = reg.snapshot().render_human();
        assert!(text.contains("bloom tree: pruned 75.0%"), "{text}");
        assert!(text.contains("4 lookups, height 3"), "{text}");
    }
}
