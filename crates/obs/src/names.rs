//! Shared metric names.
//!
//! The simulator and the live TCP runtime record under the *same*
//! names so a snapshot from either answers the same questions (the
//! simulator's byte counts come from the paper's Table 2 wire model,
//! the live runtime's from real serialized frames). Per-message-class
//! families append the `Message::kind_name()` label, e.g.
//! `gossip.msgs_out.rumor`.

/// Gossip rounds executed (one per `tick` that acted).
pub const GOSSIP_ROUNDS: &str = "gossip.rounds";
/// Rumors this node originated.
pub const GOSSIP_RUMORS_ORIGINATED: &str = "gossip.rumors.originated";
/// Rumors learned from a push.
pub const GOSSIP_LEARNED_PUSH: &str = "gossip.rumors.learned.push";
/// Rumors learned via partial anti-entropy ids.
pub const GOSSIP_LEARNED_PARTIAL_AE: &str = "gossip.rumors.learned.partial_ae";
/// Rumors learned via full anti-entropy.
pub const GOSSIP_LEARNED_AE: &str = "gossip.rumors.learned.ae";
/// Rumors retired by the death counter.
pub const GOSSIP_RUMORS_RETIRED: &str = "gossip.rumors.retired";
/// Adaptive interval slow-downs.
pub const GOSSIP_SLOWDOWNS: &str = "gossip.interval.slowdowns";
/// Adaptive interval resets to the base interval.
pub const GOSSIP_INTERVAL_RESETS: &str = "gossip.interval.resets";
/// Failed gossip contacts.
pub const GOSSIP_CONTACT_FAILURES: &str = "gossip.contact.failures";
/// Contacts that crossed the suspect threshold.
pub const GOSSIP_CONTACT_SUSPECTS: &str = "gossip.contact.suspects";
/// Contacts that recovered a previously failing peer.
pub const GOSSIP_CONTACT_RECOVERIES: &str = "gossip.contact.recoveries";
/// Family prefix: gossip messages sent, by message class.
pub const GOSSIP_MSGS_OUT: &str = "gossip.msgs_out";
/// Family prefix: gossip messages received, by message class.
pub const GOSSIP_MSGS_IN: &str = "gossip.msgs_in";
/// Family prefix: gossip bytes sent (Table 2 wire model), by class.
pub const GOSSIP_BYTES_OUT: &str = "gossip.bytes_out";
/// Family prefix: gossip bytes received (Table 2 wire model), by class.
pub const GOSSIP_BYTES_IN: &str = "gossip.bytes_in";

/// Bloom-update rumors sent as delta chains instead of full filters.
pub const GOSSIP_DELTA_SENT: &str = "gossip.delta.sent";
/// Delta chains successfully applied to the receiver's directory entry.
pub const GOSSIP_DELTA_APPLIED: &str = "gossip.delta.applied";
/// Delta chains that could not be applied (missed base, parameter
/// mismatch, corrupt payload) — each triggers a full-filter pull.
pub const GOSSIP_DELTA_CHAIN_BREAKS: &str = "gossip.delta.chain_breaks";
/// Bloom-update rumors sent with the full filter because no usable
/// delta chain existed (or the chain outgrew the full filter).
pub const GOSSIP_DELTA_FULL_FALLBACKS: &str = "gossip.delta.full_fallbacks";
/// Wire bytes saved by sending delta chains instead of full filters
/// (full rumor size minus delta rumor size, summed at send time).
pub const GOSSIP_DELTA_BYTES_SAVED: &str = "gossip.delta.bytes_saved";

/// Bytes written to the transport (live: serialized frames including
/// the length prefix; sim: Table 2 model).
pub const NET_BYTES_OUT: &str = "net.bytes_out";
/// Bytes read from the transport.
pub const NET_BYTES_IN: &str = "net.bytes_in";
/// Frames written to the transport.
pub const NET_FRAMES_OUT: &str = "net.frames_out";
/// Frames read from the transport.
pub const NET_FRAMES_IN: &str = "net.frames_in";

/// Histogram: wall-clock latency of one RPC attempt (ms).
pub const RPC_LATENCY_MS: &str = "rpc.latency_ms";
/// RPC attempts that were retried.
pub const RPC_RETRIES: &str = "rpc.retries";
/// RPCs that exhausted their retry budget.
pub const RPC_FAILURES: &str = "rpc.failures";
/// Histogram: wall-clock duration of one full gossip exchange (ms).
pub const GOSSIP_EXCHANGE_MS: &str = "gossip.exchange_ms";

/// Peers newly marked Suspect.
pub const HEALTH_SUSPECTS: &str = "health.suspects";
/// Peers newly marked Offline.
pub const HEALTH_OFFLINE: &str = "health.offline";
/// Peers that recovered to Healthy.
pub const HEALTH_RECOVERIES: &str = "health.recoveries";

/// Ranked/exhaustive searches issued.
pub const SEARCH_QUERIES: &str = "search.queries";
/// Peers actually contacted while searching.
pub const SEARCH_PEERS_CONTACTED: &str = "search.peers_contacted";
/// Candidate groups dispatched.
pub const SEARCH_GROUPS: &str = "search.groups";
/// Searches cut short by the adaptive stopping heuristic.
pub const SEARCH_STOPPED_EARLY: &str = "search.stopped_early";
/// Searches that ran the full candidate list.
pub const SEARCH_EXHAUSTED: &str = "search.exhausted";
/// Histogram: per-group dispatch duration (ms).
pub const SEARCH_GROUP_MS: &str = "search.group_ms";
/// Histogram: wall-clock of one parallel group fan-out (ms).
pub const SEARCH_FANOUT_MS: &str = "search.fanout_ms";
/// Query-cache term lookups served from the cache.
pub const SEARCH_CACHE_HITS: &str = "search.cache.hits";
/// Query-cache term lookups that had to probe the directory filters.
pub const SEARCH_CACHE_MISSES: &str = "search.cache.misses";
/// Cached peer columns re-probed because that peer's version advanced.
pub const SEARCH_CACHE_PEER_REFRESHES: &str = "search.cache.peer_refreshes";
/// Query-cache rebuilds from scratch (directory membership changed).
pub const SEARCH_CACHE_REBUILDS: &str = "search.cache.rebuilds";

/// Bloom-tree: per-peer filter probes avoided by candidate pruning
/// (tracked peers minus surviving candidates, per cold-term lookup).
pub const BLOOMTREE_PROBES_SAVED: &str = "bloomtree.probes_saved";
/// Bloom-tree: tree nodes (interior + leaf) whose union filter was
/// probed during candidate lookups.
pub const BLOOMTREE_NODES_VISITED: &str = "bloomtree.nodes_visited";
/// Bloom-tree: full bulk rebuilds (directory membership changed).
pub const BLOOMTREE_REBUILDS: &str = "bloomtree.rebuilds";
/// Gauge: current bloom-tree height in levels, leaves included
/// (0 = empty tree).
pub const BLOOMTREE_HEIGHT: &str = "bloomtree.height";
/// Bloom-tree: candidate lookups (one per cold-term tree walk).
pub const BLOOMTREE_LOOKUPS: &str = "bloomtree.lookups";
/// Bloom-tree: candidate peers that survived pruning (their real
/// filters are still probed).
pub const BLOOMTREE_CANDIDATES: &str = "bloomtree.candidates";

/// Outbound connections newly opened (real TCP connects) by the
/// persistent connection pool.
pub const CONN_OPENED: &str = "conn.opened";
/// Contacts served by reusing an already-established pooled stream
/// (keep-alive hit — no TCP connect paid).
pub const CONN_REUSED: &str = "conn.reused";
/// Idle pooled streams retired by the reaper after their idle timeout.
pub const CONN_REAPED: &str = "conn.reaped";
/// Stale keep-alive streams detected in use and transparently replaced
/// by one fresh connect — never charged as a retry or health failure.
pub const CONN_STALE_RECONNECTS: &str = "conn.stale_reconnects";
/// Gauge: correlated RPCs currently in flight on pooled streams.
pub const CONN_INFLIGHT: &str = "conn.inflight";
/// Correlated replies whose id matched no waiting request (late after a
/// timeout, duplicated, or deliberately injected as stale).
pub const CONN_UNKNOWN_CORR: &str = "conn.unknown_corr";

/// Gauge: jobs waiting in the shared search worker pool.
pub const POOL_QUEUE_DEPTH: &str = "pool.queue_depth";
/// Jobs executed by the shared search worker pool.
pub const POOL_JOBS: &str = "pool.jobs_executed";

/// Histogram: serialized Bloom filter size on the wire (bytes).
pub const BLOOM_WIRE_BYTES: &str = "bloom.wire_bytes";

/// Durable store: WAL records appended (and fsynced) this lifetime.
pub const STORE_WAL_RECORDS: &str = "store.wal_records";
/// Durable store: WAL records replayed during recovery.
pub const STORE_WAL_REPLAYS: &str = "store.wal_replays";
/// Durable store: corrupt/torn WAL tails truncated during recovery.
pub const STORE_TRUNCATED_TAILS: &str = "store.truncated_tails";
/// Durable store: snapshots written (startup persist + compactions).
pub const STORE_SNAPSHOTS: &str = "store.snapshots";
/// Durable store: WAL compactions (snapshot + log truncate).
pub const STORE_COMPACTIONS: &str = "store.compactions";
/// Durable store: bytes appended to the WAL.
pub const STORE_WAL_BYTES: &str = "store.wal_bytes";
/// Durable store: writes refused because the store was poisoned by an
/// earlier (possibly injected) crash.
pub const STORE_POISONED_WRITES: &str = "store.poisoned_writes";

/// Recoveries performed (state found on disk at startup).
pub const RECOVERY_RESTARTS: &str = "recovery.restarts";
/// Documents rehydrated into the local store during recovery.
pub const RECOVERY_DOCS_RESTORED: &str = "recovery.docs_restored";
/// Directory entries rehydrated from the persisted directory.
pub const RECOVERY_PEERS_RESTORED: &str = "recovery.peers_restored";
/// Histogram: wall-clock from recovered startup to the first completed
/// anti-entropy catch-up exchange (ms).
pub const RECOVERY_CATCHUP_MS: &str = "recovery.catchup_ms";

/// Tracked-rumor mark events (simulator: a peer learned a tracked id).
pub const SIM_TRACKED_KNOWN: &str = "sim.tracked.known_peers";
/// Tracked rumors that reached every peer.
pub const SIM_RUMORS_CONVERGED: &str = "sim.rumors.converged";
/// Histogram: birth-to-everywhere latency of tracked rumors (ms).
pub const SIM_CONVERGENCE_MS: &str = "sim.convergence_ms";

/// Replica pushes sent (one per target RPC attempt).
pub const REPLICA_PUSHES: &str = "replica.pushes";
/// Incoming replicas admitted and ingested into the local store.
pub const REPLICA_ACCEPTS: &str = "replica.accepts";
/// Incoming replicas refused (capacity, or eviction not worth it).
pub const REPLICA_REJECTS: &str = "replica.rejects";
/// Hosted replicas evicted under capacity pressure.
pub const REPLICA_EVICTIONS: &str = "replica.evictions";
/// Replica payload bytes accepted into the local store.
pub const REPLICA_BYTES: &str = "replica.bytes";
/// Duplicate search hits collapsed by content hash at the initiator.
pub const REPLICA_DUP_COLLAPSED: &str = "replica.dup_hits_collapsed";
/// Search hits only reachable through a replica (no home copy seen).
pub const REPLICA_RECOVERED_HITS: &str = "replica.recovered_hits";
/// Gauge: replicas currently hosted on behalf of other peers.
pub const REPLICA_HOSTED: &str = "replica.hosted";

/// Admission control: requests granted a service slot.
pub const ADMISSION_ADMITTED: &str = "admission.admitted";
/// Admission control: requests shed with a `Busy` reply (overflow
/// eviction, full queue, or the forced-Busy fault rule).
pub const ADMISSION_SHED: &str = "admission.shed";
/// Admission control: requests dropped because their propagated
/// deadline passed before service (the caller had already timed out).
pub const ADMISSION_EXPIRED: &str = "admission.expired";
/// Histogram: time a request spent in the admission queue before its
/// grant (ms).
pub const ADMISSION_QUEUE_WAIT_MS: &str = "admission.queue_wait_ms";

/// `Busy` replies this node sent while shedding load.
pub const BUSY_SENT: &str = "busy.sent";
/// `Busy` replies this node received from overloaded peers. Never
/// charged to peer health — the peer answered, it is merely shedding.
pub const BUSY_RECEIVED: &str = "busy.received";
/// Group-dispatch contacts skipped by the client-side busy throttle
/// (repeated `Busy` from a peer inside its advertised backoff window).
pub const BUSY_THROTTLED_PEERS: &str = "busy.throttled_peers";
