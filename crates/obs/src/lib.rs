//! # planetp-obs — unified observability for PlanetP
//!
//! One metrics substrate for every layer of the stack: the gossip
//! engine, the live TCP runtime, distributed search, and the
//! discrete-event simulator all record into a [`Registry`] of atomic
//! [`Counter`]s, [`Gauge`]s and fixed-bucket [`Histogram`]s, and every
//! layer is interrogated the same way: take a [`MetricsSnapshot`],
//! `diff` it against an earlier one, and read numbers.
//!
//! Design constraints, in order:
//! 1. **Recording is cheap.** A counter bump is one relaxed atomic add;
//!    no locks on the hot path, so gossip ticks and RPC handlers can
//!    record unconditionally.
//! 2. **One schema.** Metric names live in [`names`]; the simulator
//!    and the live runtime use the same ones, so tests written against
//!    a simulated snapshot hold for a scraped live node (the paper's
//!    Fig 2 / Fig 6 measurements become assertions either way).
//! 3. **Zero heavyweight deps.** `serde`/`serde_json` for the snapshot
//!    wire format; everything else is `std`.

pub mod names;
pub mod registry;
pub mod snapshot;

pub use registry::{
    Counter, CounterFamily, Gauge, Histogram, Registry, LATENCY_MS_BUCKETS, SIZE_BYTES_BUCKETS,
};
pub use snapshot::{HistogramSnapshot, MetricValue, MetricsSnapshot};
